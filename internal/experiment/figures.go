package experiment

import (
	"fmt"

	"repro/internal/baseline/fixedstack"
	"repro/internal/baseline/mate"
	"repro/internal/baseline/tkernel"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/rewriter"
)

// Figure4 reproduces the code-inflation comparison with the default worker
// pool. See Runner.Figure4.
func Figure4() (*Table, error) { return Runner{}.Figure4() }

// Figure4 reproduces the code-inflation comparison: for each of the seven
// kernel benchmarks, the native size and the naturalized sizes under
// SenSmart (rewritten code / shift table / trampolines) and the t-kernel.
func (r Runner) Figure4() (*Table, error) {
	t := &Table{
		ID:    "fig4",
		Title: "Code inflation of kernel benchmark programs (Figure 4)",
		Header: []string{"Program", "Native(B)", "SenSmart rewritten", "SenSmart shift",
			"SenSmart tramp", "SenSmart total", "Inflation", "t-kernel", "t-k inflation"},
	}
	kbs := progs.KernelBenchmarks()
	rows, err := runPoints(r.workers(), len(kbs), runProgress(r, "fig4", len(kbs), nil,
		func(i int) ([]string, error) {
			return figure4Row(kbs[i])
		}))
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper: SenSmart inflation stays within 200%; t-kernel considerably larger")
	return t, nil
}

// figure4Row measures one benchmark's code inflation.
func figure4Row(kb progs.KernelBenchmark) ([]string, error) {
	nat, err := rewriter.Rewrite(kb.Program, rewriter.Config{})
	if err != nil {
		return nil, err
	}
	tk, err := tkernel.Naturalize(kb.Program)
	if err != nil {
		return nil, err
	}
	native := kb.Program.SizeBytes()
	total := nat.Program.SizeBytes()
	return []string{
		kb.Name,
		itoa(native),
		itoa(2 * nat.CodeWords),
		itoa(2 * nat.ShiftWords),
		itoa(2 * nat.TrampolineWords),
		itoa(total),
		pct(uint64(total-native), uint64(native)),
		itoa(tk.CodeBytes()),
		pct(uint64(tk.CodeBytes()-native), uint64(native)),
	}, nil
}

// Figure5 reproduces the execution-time comparison with the default worker
// pool. See Runner.Figure5.
func Figure5() (*Table, error) { return Runner{}.Figure5() }

// Figure5 reproduces the execution-time comparison of the seven kernel
// benchmarks: native, SenSmart (with the memory-protection share of its
// overhead broken out), and the t-kernel (steady state, warm-up excluded as
// in the paper's Figure 5).
func (r Runner) Figure5() (*Table, error) {
	t := &Table{
		ID:    "fig5",
		Title: "Execution time of kernel benchmark programs, seconds (Figure 5)",
		Header: []string{"Program", "Native", "SenSmart mem-prot", "SenSmart total",
			"t-kernel", "SenSmart/native", "t-kernel/native"},
	}
	kbs := progs.KernelBenchmarks()
	rows, err := runPoints(r.workers(), len(kbs), runProgress(r, "fig5", len(kbs), nil,
		func(i int) ([]string, error) {
			return figure5Row(kbs[i])
		}))
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper: SenSmart shows a moderate slowdown; t-kernel is faster on most programs",
		"t-kernel warm-up rewriting is excluded here (it appears in Figure 6a)")
	return t, nil
}

// figure5Row runs one benchmark natively, under SenSmart, and under the
// t-kernel, each on a machine of its own.
func figure5Row(kb progs.KernelBenchmark) ([]string, error) {
	nativeCycles, _, err := runNativeCycles(kb.Program.Clone(), 2_000_000_000)
	if err != nil {
		return nil, err
	}
	run, err := runSenSmart(kernel.Config{}, 4_000_000_000, kb.Program.Clone())
	if err != nil {
		return nil, err
	}
	// Split the SenSmart overhead: memory protection (address
	// translation and SP services) versus everything else.
	memProt := uint64(0)
	for i, n := range run.K.Stats.ServiceCalls {
		switch rewriter.Class(i) {
		case rewriter.ClassDirectIO:
			memProt += n * kernel.CostDirectIO
		case rewriter.ClassDirectMem:
			memProt += n * kernel.CostDirectMem
		case rewriter.ClassIndirectMem:
			memProt += n * kernel.CostIndHeap // representative row
		case rewriter.ClassSPRead:
			memProt += n * kernel.CostGetSP
		case rewriter.ClassSPWrite:
			memProt += n * kernel.CostSetSP
		case rewriter.ClassLpm:
			memProt += n * kernel.CostProgMem
		}
	}
	tkImg, err := tkernel.Naturalize(kb.Program)
	if err != nil {
		return nil, err
	}
	m := mcu.New()
	rt, err := tkernel.NewRuntime(m, tkImg)
	if err != nil {
		return nil, err
	}
	if err := rt.Run(4_000_000_000); err != nil {
		return nil, err
	}
	if !rt.Exited() {
		return nil, fmt.Errorf("experiment: t-kernel run of %s did not finish", kb.Name)
	}
	return []string{
		kb.Name,
		seconds(nativeCycles),
		seconds(nativeCycles + memProt),
		seconds(run.Cycles),
		seconds(m.Cycles()),
		fmt.Sprintf("%.2fx", float64(run.Cycles)/float64(nativeCycles)),
		fmt.Sprintf("%.2fx", float64(m.Cycles())/float64(nativeCycles)),
	}, nil
}

// Figure6Point is one x-axis point of the PeriodicTask experiment.
type Figure6Point struct {
	Instructions   int
	NativeCycles   uint64
	NativeUtil     float64
	SenSmartCycles uint64
	SenSmartUtil   float64
	TKernelCycles  uint64 // includes the warm-up rewriting delay
	TKernelUtil    float64
	MateCycles     uint64
}

// Figure6 sweeps the PeriodicTask computation size with the default worker
// pool. See Runner.Figure6.
func Figure6(sizes []int, activations int) ([]Figure6Point, error) {
	return Runner{}.Figure6(sizes, activations)
}

// Figure6 sweeps the PeriodicTask computation size and measures execution
// time and CPU utilization under native execution, SenSmart, the t-kernel
// (warm-up included, as in Figure 6a) and the Maté-style VM (Figure 6c).
// activations scales the experiment length (the paper uses 300).
func (r Runner) Figure6(sizes []int, activations int) ([]Figure6Point, error) {
	if len(sizes) == 0 {
		sizes = []int{10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 70_000, 80_000, 90_000, 100_000}
	}
	if activations == 0 {
		activations = 300
	}
	return runPoints(r.workers(), len(sizes), runProgress(r, "fig6", len(sizes),
		func(p Figure6Point) uint64 { return p.SenSmartCycles },
		func(i int) (Figure6Point, error) {
			return figure6Point(sizes[i], activations)
		}))
}

// figure6Point measures one computation size under all four systems.
func figure6Point(size, activations int) (Figure6Point, error) {
	pt := Figure6Point{Instructions: size}
	params := progs.PeriodicParams{Instructions: size, Activations: activations}

	nativeProg := progs.PeriodicTaskNative(params)
	cycles, idle, err := runNativeCycles(nativeProg, 30_000_000_000)
	if err != nil {
		return pt, err
	}
	pt.NativeCycles = cycles
	pt.NativeUtil = 1 - float64(idle)/float64(cycles)

	smartProg := progs.PeriodicTask(params)
	run, err := runSenSmart(kernel.Config{}, 30_000_000_000, smartProg)
	if err != nil {
		return pt, err
	}
	pt.SenSmartCycles = run.Cycles
	pt.SenSmartUtil = 1 - float64(run.Idle)/float64(run.Cycles)

	tkImg, err := tkernel.Naturalize(nativeProg)
	if err != nil {
		return pt, err
	}
	m := mcu.New()
	rt, err := tkernel.NewRuntime(m, tkImg)
	if err != nil {
		return pt, err
	}
	rt.Boot() // Figure 6a includes the ~1 s warm-up
	if err := rt.Run(30_000_000_000); err != nil {
		return pt, err
	}
	if !rt.Exited() {
		return pt, fmt.Errorf("experiment: t-kernel periodic run (%d) did not finish", size)
	}
	pt.TKernelCycles = m.Cycles()
	pt.TKernelUtil = 1 - float64(m.IdleCycles())/float64(m.Cycles())

	code, err := mate.PeriodicProgram(size, activations, params.PeriodTicks)
	if err != nil {
		return pt, err
	}
	vm := mate.New(code)
	if err := vm.Run(0); err != nil {
		return pt, err
	}
	pt.MateCycles = vm.Cycles
	return pt, nil
}

// Figure6Table renders the sweep in the layout of Figures 6(a)-(c).
func Figure6Table(points []Figure6Point) *Table {
	t := &Table{
		ID:    "fig6",
		Title: "PeriodicTask: execution time (s) and CPU utilization (Figure 6)",
		Header: []string{"Insns", "Native(s)", "t-kernel(s)", "SenSmart(s)", "Mate(s)",
			"NativeUtil", "SenSmartUtil"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			itoa(p.Instructions),
			seconds(p.NativeCycles),
			seconds(p.TKernelCycles),
			seconds(p.SenSmartCycles),
			seconds(p.MateCycles),
			fmt.Sprintf("%.1f%%", 100*p.NativeUtil),
			fmt.Sprintf("%.1f%%", 100*p.SenSmartUtil),
		})
	}
	t.Notes = append(t.Notes,
		"paper: SenSmart tracks native below ~60k instructions, then departs sharply (6a)",
		"paper: utilization saturates at the same knee (6b); Mate is orders of magnitude slower (6c)",
		"t-kernel column includes its ~1 s on-node rewriting warm-up, hence the constant offset")
	return t
}

// Figure7Point is one x-axis point of the stack-versatility experiment.
type Figure7Point struct {
	NodesPerTree   int
	AdmittedTasks  int
	SurvivingTasks int
	AvgStackAlloc  float64 // bytes per surviving search task
	MaxStackUsed   uint16  // high-water mark across tasks
	Relocations    int
	Terminations   int
}

// Figure7 runs the stack-versatility workload with the default worker pool.
// See Runner.Figure7.
func Figure7(nodesPerTree []int, budgetCycles uint64) ([]Figure7Point, error) {
	return Runner{}.Figure7(nodesPerTree, budgetCycles)
}

// Figure7 runs the sense-and-send binary-tree workload: as many search
// tasks as admission allows, measured after a fixed simulated duration.
func (r Runner) Figure7(nodesPerTree []int, budgetCycles uint64) ([]Figure7Point, error) {
	if len(nodesPerTree) == 0 {
		nodesPerTree = []int{8, 16, 24, 32, 40}
	}
	if budgetCycles == 0 {
		budgetCycles = 40_000_000
	}
	return runPoints(r.workers(), len(nodesPerTree), runProgress(r, "fig7", len(nodesPerTree),
		func(Figure7Point) uint64 { return budgetCycles },
		func(i int) (Figure7Point, error) {
			return figure7Point(nodesPerTree[i], budgetCycles)
		}))
}

// figure7Point fills one node with tree-search tasks and measures survival.
func figure7Point(n int, budgetCycles uint64) (Figure7Point, error) {
	pt := Figure7Point{NodesPerTree: n}
	m := mcu.New()
	k := kernel.New(m, kernel.Config{InitialStack: 64})
	for i := 0; ; i++ {
		prog, err := progs.TreeSearch(progs.TreeSearchParams{
			Trees:        6,
			NodesPerTree: n,
			Seed:         uint16(0xACE1 + 73*i),
		})
		if err != nil {
			return pt, err
		}
		nat, err := rewriter.Rewrite(prog, rewriter.Config{})
		if err != nil {
			return pt, err
		}
		if _, err := k.AddTask(fmt.Sprintf("search%d", i), nat); err != nil {
			break
		}
		pt.AdmittedTasks++
	}
	if pt.AdmittedTasks == 0 {
		return pt, nil
	}
	if err := k.Boot(); err != nil {
		return pt, err
	}
	if err := k.Run(budgetCycles); err != nil {
		return pt, err
	}
	var allocSum uint64
	for _, task := range k.Tasks {
		if task.State() != kernel.TaskTerminated {
			pt.SurvivingTasks++
			allocSum += uint64(task.StackAlloc())
		}
		if task.MaxStackUsed > pt.MaxStackUsed {
			pt.MaxStackUsed = task.MaxStackUsed
		}
	}
	if pt.SurvivingTasks > 0 {
		pt.AvgStackAlloc = float64(allocSum) / float64(pt.SurvivingTasks)
	}
	pt.Relocations = k.Stats.Relocations
	pt.Terminations = k.Stats.Terminations
	return pt, nil
}

// Figure7Table renders the stack-versatility sweep.
func Figure7Table(points []Figure7Point) *Table {
	t := &Table{
		ID:    "fig7",
		Title: "Binary-tree search under SenSmart (Figure 7)",
		Header: []string{"Nodes/tree", "Admitted", "Schedulable", "AvgStackAlloc(B)",
			"MaxStackUsed(B)", "Relocations", "Terminations"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			itoa(p.NodesPerTree),
			itoa(p.AdmittedTasks),
			itoa(p.SurvivingTasks),
			fmt.Sprintf("%.0f", p.AvgStackAlloc),
			itoa(int(p.MaxStackUsed)),
			itoa(p.Relocations),
			itoa(p.Terminations),
		})
	}
	t.Notes = append(t.Notes,
		"paper: schedulable tasks fall as trees grow; avg allocation stays below peak demand;",
		"relocation counts stay modest (< 50); terminations free memory the survivors absorb")
	return t
}

// Figure8Point compares SenSmart and the fixed-stack (LiteOS-like) baseline.
type Figure8Point struct {
	NodesPerTree  int
	SenSmartTasks int
	FixedTasks    int
}

// Figure8 runs the fixed-stack comparison with the default worker pool. See
// Runner.Figure8.
func Figure8(nodesPerTree []int, budgetCycles uint64) ([]Figure8Point, error) {
	return Runner{}.Figure8(nodesPerTree, budgetCycles)
}

// Figure8 grants SenSmart the same application memory the LiteOS-like
// baseline has (which loses 2 KB to kernel static data) and compares how
// many two-tree search tasks each can schedule.
func (r Runner) Figure8(nodesPerTree []int, budgetCycles uint64) ([]Figure8Point, error) {
	if len(nodesPerTree) == 0 {
		nodesPerTree = []int{10, 20, 30, 40, 50, 60}
	}
	if budgetCycles == 0 {
		budgetCycles = 40_000_000
	}
	return runPoints(r.workers(), len(nodesPerTree), runProgress(r, "fig8", len(nodesPerTree),
		func(Figure8Point) uint64 { return budgetCycles },
		func(i int) (Figure8Point, error) {
			return figure8Point(nodesPerTree[i], budgetCycles)
		}))
}

// figure8Point compares schedulable task counts at one tree size.
func figure8Point(n int, budgetCycles uint64) (Figure8Point, error) {
	// The LiteOS-style application area after its 2 KB of static data.
	liteArea := uint16(mcu.DataSize - mcu.SRAMBase - fixedstack.KernelStaticData)
	const worstStack = 224 // programmer-declared worst case (~15 B x 15 levels)

	pt := Figure8Point{NodesPerTree: n}
	prog, err := progs.TreeSearch(progs.TreeSearchParams{
		Trees: 2, NodesPerTree: n,
	})
	if err != nil {
		return pt, err
	}
	nat, err := rewriter.Rewrite(prog, rewriter.Config{})
	if err != nil {
		return pt, err
	}
	pt.FixedTasks = fixedstack.MaxSchedulable(fixedstack.Config{
		WorstCaseStack: worstStack,
	}, nat)

	// SenSmart with the same memory: admit, run, count survivors.
	m := mcu.New()
	k := kernel.New(m, kernel.Config{AppLimit: liteArea, InitialStack: 64})
	admitted := 0
	for i := 0; ; i++ {
		p2, err := progs.TreeSearch(progs.TreeSearchParams{
			Trees: 2, NodesPerTree: n, Seed: uint16(0xACE1 + 131*i),
		})
		if err != nil {
			return pt, err
		}
		nat2, err := rewriter.Rewrite(p2, rewriter.Config{})
		if err != nil {
			return pt, err
		}
		if _, err := k.AddTask(fmt.Sprintf("s%d", i), nat2); err != nil {
			break
		}
		admitted++
	}
	if admitted > 0 {
		if err := k.Boot(); err != nil {
			return pt, err
		}
		if err := k.Run(budgetCycles); err != nil {
			return pt, err
		}
		for _, task := range k.Tasks {
			if task.State() != kernel.TaskTerminated {
				pt.SenSmartTasks++
			}
		}
	}
	return pt, nil
}

// Figure8Table renders the SenSmart-vs-LiteOS comparison.
func Figure8Table(points []Figure8Point) *Table {
	t := &Table{
		ID:     "fig8",
		Title:  "Schedulable search tasks: SenSmart vs fixed-stack LiteOS-like (Figure 8)",
		Header: []string{"Nodes/tree", "SenSmart", "LiteOS-like"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{itoa(p.NodesPerTree), itoa(p.SenSmartTasks), itoa(p.FixedTasks)})
	}
	t.Notes = append(t.Notes,
		"paper: versatile stack management lets SenSmart schedule more tasks at every size")
	return t
}

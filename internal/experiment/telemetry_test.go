package experiment

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/kernel"
	"repro/internal/progs"
	"repro/internal/telemetry"
)

// Every kernel benchmark's final telemetry snapshot must reconcile exactly,
// field for field, with the kernel's Metrics aggregation — the sampler reads
// the same cycle ledgers, so any divergence means the snapshot logic drifted.
func TestTelemetryFinalSnapshotAllBenchmarks(t *testing.T) {
	for _, kb := range progs.KernelBenchmarks() {
		kb := kb
		t.Run(kb.Name, func(t *testing.T) {
			smp := telemetry.New(telemetry.Options{Every: 200_000})
			run, err := runSenSmart(kernel.Config{Telemetry: smp}, 4_000_000_000, kb.Program.Clone())
			if err != nil {
				t.Fatal(err)
			}
			s, ok := run.K.SampleTelemetryNow()
			if !ok {
				t.Fatal("SampleTelemetryNow returned false with a sampler attached")
			}
			m := run.K.Metrics()
			if s.Cycle != m.TotalCycles || s.IdleCycles != m.IdleCycles ||
				s.KernelCycles() != m.KernelCycles || s.AppCycles() != m.AppCycles ||
				s.ServiceOverheadCycles != m.ServiceOverheadCycles ||
				s.SwitchCycles != m.SwitchCycles || s.RelocCycles != m.RelocCycles ||
				s.BootCycles != m.BootCycles {
				t.Fatalf("cycle split diverged from Metrics: sample %+v", s)
			}
			if s.ContextSwitches != m.ContextSwitches || s.Preemptions != m.Preemptions ||
				s.BranchTraps != m.BranchTraps || s.SliceChecks != m.SliceChecks ||
				s.Relocations != m.Relocations || s.Terminations != m.Terminations {
				t.Fatal("counters diverged from Metrics")
			}
			if len(s.Tasks) != len(m.Tasks) {
				t.Fatalf("%d task samples vs %d task metrics", len(s.Tasks), len(m.Tasks))
			}
			for i, ts := range s.Tasks {
				tm := m.Tasks[i]
				if int(ts.ID) != tm.ID || ts.Name != tm.Name || ts.State != tm.State ||
					ts.RunCycles != tm.RunCycles || ts.KernelCycles != tm.KernelCycles ||
					ts.StackAlloc != tm.StackAlloc || ts.Traps != tm.Traps ||
					ts.Relocations != tm.Relocations || ts.Switches != tm.Switches {
					t.Fatalf("task %d diverged: sample %+v vs metrics %+v", i, ts, tm)
				}
			}
		})
	}
}

// sampleBenchmark runs one benchmark with a streaming sampler and returns
// the live NDJSON stream plus the ring-dump exports.
func sampleBenchmark(t *testing.T, kb progs.KernelBenchmark) (stream, dump, series []byte) {
	t.Helper()
	var buf bytes.Buffer
	smp := telemetry.New(telemetry.Options{Every: 100_000, Stream: &buf})
	if _, err := runSenSmart(kernel.Config{Telemetry: smp}, 4_000_000_000, kb.Program.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := smp.StreamErr(); err != nil {
		t.Fatal(err)
	}
	var dumpBuf, seriesBuf bytes.Buffer
	if err := smp.WriteNDJSON(&dumpBuf); err != nil {
		t.Fatal(err)
	}
	if err := smp.WriteJSON(&seriesBuf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), dumpBuf.Bytes(), seriesBuf.Bytes()
}

// The simulated clock drives sampling, so telemetry exports are
// deterministic: repeated serial runs and parallel-pool runs of the same
// benchmarks must produce byte-identical NDJSON and JSON series.
func TestTelemetryExportsDeterministic(t *testing.T) {
	benches := progs.KernelBenchmarks()

	type export struct{ stream, dump, series []byte }
	collect := func(workers int) []export {
		out, err := runPoints(workers, len(benches), func(i int) (export, error) {
			s, d, j := sampleBenchmark(t, benches[i])
			return export{s, d, j}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	serial := collect(1)
	repeat := collect(1)
	pooled := collect(4)
	for i, kb := range benches {
		for _, other := range []struct {
			mode string
			got  export
		}{{"repeated serial", repeat[i]}, {"parallel pool", pooled[i]}} {
			if !bytes.Equal(serial[i].stream, other.got.stream) {
				t.Fatalf("%s: %s run streamed different NDJSON bytes", kb.Name, other.mode)
			}
			if !bytes.Equal(serial[i].dump, other.got.dump) {
				t.Fatalf("%s: %s run dumped different NDJSON bytes", kb.Name, other.mode)
			}
			if !bytes.Equal(serial[i].series, other.got.series) {
				t.Fatalf("%s: %s run exported a different JSON series", kb.Name, other.mode)
			}
		}
		if len(serial[i].stream) == 0 {
			t.Fatalf("%s: no samples streamed", kb.Name)
		}
		// Nothing wrapped at this ring size, so the live stream and the ring
		// dump must agree exactly.
		if !bytes.Equal(serial[i].stream, serial[i].dump) {
			t.Fatalf("%s: live stream and ring dump disagree", kb.Name)
		}
	}
}

// Runner.Progress must observe every sweep point exactly once, in sweep
// order after the ordered merge, regardless of worker count.
func TestRunnerProgressReportsEveryPoint(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var lines []string
		prog := telemetry.NewProgress(func(line string) {
			mu.Lock()
			lines = append(lines, line)
			mu.Unlock()
		})
		r := Runner{Concurrency: workers, Progress: prog}
		tbl, err := r.Figure5()
		if err != nil {
			t.Fatal(err)
		}
		pts := prog.Points()
		if len(pts) != len(tbl.Rows) {
			t.Fatalf("workers=%d: %d progress points for %d sweep rows", workers, len(pts), len(tbl.Rows))
		}
		if len(lines) != len(pts) {
			t.Fatalf("workers=%d: %d sink lines for %d points", workers, len(lines), len(pts))
		}
		seen := map[int]bool{}
		for _, p := range pts {
			if p.Sweep != "fig5" || p.Total != len(tbl.Rows) {
				t.Fatalf("workers=%d: unexpected point %+v", workers, p)
			}
			if seen[p.Index] {
				t.Fatalf("workers=%d: point %d reported twice", workers, p.Index)
			}
			seen[p.Index] = true
		}
	}
}

package experiment

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/avr/asm"
	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/rewriter"
)

// dna turns a fuzzer-controlled byte string into an unbounded stream of
// small decisions, so that every input — including mutated garbage — maps to
// a valid program. Bytes repeat from the start when the string runs out.
type dna struct {
	data []byte
	pos  int
}

func (d *dna) next() byte {
	if len(d.data) == 0 {
		return 0
	}
	b := d.data[d.pos%len(d.data)]
	d.pos++
	return b
}

func (d *dna) intn(n int) int { return int(d.next()) % n }

// programFromDNA emits a random-but-valid AVR program from the decision
// stream: ALU work, direct and indirect heap accesses, displacement
// accesses, forward branches, calls, bounded loops, program-memory reads and
// push/pop pairs — every instruction class the rewriter patches. The mix
// mirrors the kernel package's randomProgram generator, but driven by fuzz
// bytes instead of a PRNG so the fuzzer can explore the space.
func programFromDNA(d *dna) string {
	var b strings.Builder
	b.WriteString(".data\nbuf: .space 48\n.text\nmain:\n")
	for i := 16; i <= 25; i++ {
		fmt.Fprintf(&b, "    ldi r%d, %d\n", i, d.intn(256))
	}
	b.WriteString("    ldi r26, lo8(buf)\n    ldi r27, hi8(buf)\n")
	b.WriteString("    ldi r28, lo8(buf+16)\n    ldi r29, hi8(buf+16)\n")

	label := 0
	n := 8 + d.intn(28)
	for i := 0; i < n; i++ {
		switch d.intn(12) {
		case 0:
			fmt.Fprintf(&b, "    add r%d, r%d\n", 16+d.intn(10), 16+d.intn(10))
		case 1:
			fmt.Fprintf(&b, "    eor r%d, r%d\n", 16+d.intn(10), 16+d.intn(10))
		case 2:
			fmt.Fprintf(&b, "    subi r%d, %d\n", 16+d.intn(10), d.intn(256))
		case 3:
			fmt.Fprintf(&b, "    sts buf+%d, r%d\n", d.intn(48), 16+d.intn(10))
		case 4:
			fmt.Fprintf(&b, "    lds r%d, buf+%d\n", 16+d.intn(10), d.intn(48))
		case 5:
			// Indirect store then reload through X, pointer reset first so
			// the access stays inside buf.
			off := d.intn(40)
			fmt.Fprintf(&b, "    ldi r26, lo8(buf+%d)\n    ldi r27, hi8(buf+%d)\n", off, off)
			fmt.Fprintf(&b, "    st X+, r%d\n    ld r%d, -X\n", 16+d.intn(10), 16+d.intn(10))
		case 6:
			// Displacement access through Y (points at buf+16).
			fmt.Fprintf(&b, "    std Y+%d, r%d\n    ldd r%d, Y+%d\n",
				d.intn(16), 16+d.intn(10), 16+d.intn(10), d.intn(16))
		case 7:
			fmt.Fprintf(&b, "    tst r%d\n    breq L%d\n    inc r%d\nL%d:\n",
				16+d.intn(10), label, 16+d.intn(10), label)
			label++
		case 8:
			fmt.Fprintf(&b, "    rcall fn%d\n", d.intn(2))
		case 9:
			// Bounded backward loop (3..9 iterations).
			fmt.Fprintf(&b, "    ldi r%d, %d\nL%d:\n    dec r%d\n    brne L%d\n",
				16+d.intn(4), 3+d.intn(7), label, 16+d.intn(4), label)
			label++
		case 10:
			fmt.Fprintf(&b, "    ldi r30, lo8(pmbyte(tab))\n    ldi r31, hi8(pmbyte(tab))\n")
			fmt.Fprintf(&b, "    lpm r%d, Z+\n    lpm r%d, Z\n", 16+d.intn(10), 16+d.intn(10))
		case 11:
			reg := 16 + d.intn(10)
			fmt.Fprintf(&b, "    push r%d\n    pop r%d\n", reg, reg)
		}
	}
	// Clear pointer registers so register values are timing-independent at
	// comparison time.
	b.WriteString("    clr r26\n    clr r27\n    clr r30\n    clr r31\n")
	b.WriteString("    break\n")
	b.WriteString("fn0:\n    inc r24\n    ret\nfn1:\n    lsr r25\n    ret\n")
	fmt.Fprintf(&b, "tab:\n    .dw 0x%02x%02x, 0x%02x%02x\n",
		d.next(), d.next(), d.next(), d.next())
	return b.String()
}

// assertSameExecution runs prog natively and under the SenSmart
// rewriter+kernel and fails unless the final register file, the entire heap,
// and the UART output are identical — the semantics-preservation contract of
// naturalization (Section IV-B).
func assertSameExecution(t testing.TB, prog *image.Program, nativeLimit, kernelLimit uint64) {
	t.Helper()
	native, err := progs.RunNative(prog.Clone(), nativeLimit)
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	nat, err := rewriter.Rewrite(prog.Clone(), rewriter.Config{})
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	m := mcu.New()
	k := kernel.New(m, kernel.Config{})
	task, err := k.AddTask(prog.Name, nat)
	if err != nil {
		t.Fatalf("add task: %v", err)
	}
	if err := k.Boot(); err != nil {
		t.Fatalf("boot: %v", err)
	}
	if err := k.Run(kernelLimit); err != nil {
		t.Fatalf("kernel run: %v", err)
	}
	if task.ExitReason != "exited" {
		t.Fatalf("task did not exit cleanly: %q", task.ExitReason)
	}
	for i := uint8(0); i < 32; i++ {
		if native.Machine.Reg(i) != m.Reg(i) {
			t.Fatalf("r%d: native=%#x sensmart=%#x", i, native.Machine.Reg(i), m.Reg(i))
		}
	}
	pl, _, _ := task.Region()
	for off := uint16(0); off < prog.HeapSize; off++ {
		nv := native.Machine.Peek(prog.HeapBase + off)
		kv := m.Peek(pl + off)
		if nv != kv {
			t.Fatalf("heap+%d: native=%#x sensmart=%#x", off, nv, kv)
		}
	}
	if nu, ku := native.Machine.UARTOutput(), m.UARTOutput(); !bytes.Equal(nu, ku) {
		t.Fatalf("uart: native=%q sensmart=%q", nu, ku)
	}
}

// dnaFromProgram derives a seed-corpus entry from a real program's code
// image, so the fuzzer starts from the instruction-mix statistics of the
// seven kernel benchmarks rather than from all-zero inputs.
func dnaFromProgram(p *image.Program) []byte {
	out := make([]byte, 0, 512)
	for _, w := range p.Words {
		out = append(out, byte(w), byte(w>>8))
		if len(out) >= 512 {
			break
		}
	}
	return out
}

// FuzzDifferential is the fuzz entry point: any byte string becomes a valid
// program via programFromDNA, which must then behave identically native and
// naturalized. Run with:
//
//	go test ./internal/experiment -run Fuzz -fuzz=FuzzDifferential -fuzztime=10s
func FuzzDifferential(f *testing.F) {
	// Seed with the seven kernel benchmarks' code bytes plus a few
	// hand-picked decision strings that exercise each generator arm.
	for _, kb := range progs.KernelBenchmarks() {
		f.Add(dnaFromProgram(kb.Program))
	}
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 255, 128, 64})
	f.Add([]byte{5, 5, 5, 6, 6, 6, 3, 4, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		src := programFromDNA(&dna{data: data})
		prog, err := asm.Assemble("fuzz", src)
		if err != nil {
			t.Fatalf("generated program does not assemble: %v\n%s", err, src)
		}
		assertSameExecution(t, prog, 10_000_000, 50_000_000)
	})
}

// TestDifferentialKernelBenchmarks runs the seven real benchmark kernels
// through the same native-vs-SenSmart comparison the fuzzer applies to
// generated programs: identical registers, heap, and UART output.
func TestDifferentialKernelBenchmarks(t *testing.T) {
	for _, kb := range progs.KernelBenchmarks() {
		t.Run(kb.Name, func(t *testing.T) {
			if testing.Short() && kb.Name == "lfsr" {
				t.Skip("long benchmark in -short mode")
			}
			assertSameExecution(t, kb.Program, 2_000_000_000, 4_000_000_000)
		})
	}
}

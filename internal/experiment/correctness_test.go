package experiment

import (
	"testing"

	"repro/internal/baseline/tkernel"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/minic"
	"repro/internal/progs"
	"repro/internal/rewriter"
)

// resultSymbols maps each kernel benchmark to the heap symbol holding its
// final result, so the three execution systems can be cross-checked.
var resultSymbols = map[string]string{
	"am":         "sent",
	"amplitude":  "amp",
	"crc":        "crc",
	"eventchain": "counts",
	"lfsr":       "out",
	"readadc":    "sum",
	"timer":      "ticks",
}

// TestCrossSystemCorrectness runs every kernel benchmark natively, under
// the SenSmart kernel, and under the t-kernel baseline, and requires all
// three to compute the same result — timing systems may differ in cycles,
// never in semantics.
func TestCrossSystemCorrectness(t *testing.T) {
	for _, kb := range progs.KernelBenchmarks() {
		kb := kb
		t.Run(kb.Name, func(t *testing.T) {
			symbol := resultSymbols[kb.Name]
			if symbol == "" {
				t.Fatalf("no result symbol for %s", kb.Name)
			}
			sym, ok := kb.Program.Lookup(symbol)
			if !ok {
				t.Fatalf("symbol %q missing", symbol)
			}
			addr := uint16(sym.Addr)
			offset := addr - kb.Program.HeapBase

			// Native.
			native, err := progs.RunNative(kb.Program.Clone(), 10_000_000_000)
			if err != nil {
				t.Fatal(err)
			}
			want := uint16(native.Machine.Peek(addr)) |
				uint16(native.Machine.Peek(addr+1))<<8

			// SenSmart.
			nat, err := rewriter.Rewrite(kb.Program, rewriter.Config{})
			if err != nil {
				t.Fatal(err)
			}
			m := mcu.New()
			k := kernel.New(m, kernel.Config{})
			var got uint16
			k.Cfg.OnTaskExit = func(kk *kernel.Kernel, task *kernel.Task) {
				pl, _, _ := task.Region()
				got = uint16(kk.M.Peek(pl+offset)) | uint16(kk.M.Peek(pl+offset+1))<<8
			}
			if _, err := k.AddTask(kb.Name, nat); err != nil {
				t.Fatal(err)
			}
			if err := k.Boot(); err != nil {
				t.Fatal(err)
			}
			if err := k.Run(20_000_000_000); err != nil {
				t.Fatal(err)
			}
			if !k.Done() {
				t.Fatal("sensmart run incomplete")
			}
			if got != want {
				t.Errorf("sensmart %s = %#x, native %#x", symbol, got, want)
			}

			// t-kernel.
			img, err := tkernel.Naturalize(kb.Program)
			if err != nil {
				t.Fatal(err)
			}
			tm := mcu.New()
			rt, err := tkernel.NewRuntime(tm, img)
			if err != nil {
				t.Fatal(err)
			}
			if err := rt.Run(20_000_000_000); err != nil {
				t.Fatal(err)
			}
			if !rt.Exited() {
				t.Fatal("t-kernel run incomplete")
			}
			tkGot := uint16(tm.Peek(addr)) | uint16(tm.Peek(addr+1))<<8
			if tkGot != want {
				t.Errorf("t-kernel %s = %#x, native %#x", symbol, tkGot, want)
			}
		})
	}
}

// TestCompiledCPipelineInflation runs a compiler-generated program through
// the rewriter: the inflation of compiled C code must stay in the same band
// the paper reports for nesC binaries (within ~200%).
func TestCompiledCPipelineInflation(t *testing.T) {
	prog, err := minic.Compile("ccrc", `
char msg[64];
int crc;
void main() {
    int i;
    int bit;
    for (i = 0; i < 64; i++) {
        msg[i] = i * 7 + 1;
    }
    crc = 0xffff;
    for (i = 0; i < 64; i++) {
        crc = crc ^ (msg[i] << 8);
        for (bit = 0; bit < 8; bit++) {
            if (crc & 0x8000) {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc = crc << 1;
            }
        }
    }
    exit();
}
`)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := rewriter.Rewrite(prog, rewriter.Config{})
	if err != nil {
		t.Fatal(err)
	}
	native := prog.SizeBytes()
	total := nat.Program.SizeBytes()
	infl := 100 * (total - native) / native
	t.Logf("compiled C: native %dB -> naturalized %dB (%d%%)", native, total, infl)
	if infl > 200 {
		t.Errorf("compiled-C inflation %d%% exceeds the paper's 200%% band", infl)
	}
	// And it must still compute the right CRC under the kernel.
	m := mcu.New()
	k := kernel.New(m, kernel.Config{})
	var got uint16
	k.Cfg.OnTaskExit = func(kk *kernel.Kernel, task *kernel.Task) {
		sym, _ := prog.Lookup("g_crc")
		pl, _, _ := task.Region()
		off := uint16(sym.Addr) - prog.HeapBase
		got = uint16(kk.M.Peek(pl+off)) | uint16(kk.M.Peek(pl+off+1))<<8
	}
	if _, err := k.AddTask("ccrc", nat); err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	// Reference CRC16-CCITT over the same message.
	crc := uint16(0xFFFF)
	v := byte(1)
	for i := 0; i < 64; i++ {
		crc ^= uint16(v) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		v += 7
	}
	if got != crc {
		t.Errorf("compiled-C crc = %#x, want %#x", got, crc)
	}
}

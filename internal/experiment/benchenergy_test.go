package experiment

import (
	"bytes"
	"testing"

	"repro/internal/energy"
	"repro/internal/kernel"
	"repro/internal/progs"
)

// The energy axis must be byte-identical between a serial run and an 8-way
// pool: every joule is integer math on deterministic cycle ledgers, and the
// pool merges points in sweep order.
func TestEnergyBenchDeterministic(t *testing.T) {
	serial, err := Runner{Concurrency: 1}.BenchEnergy(5)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Runner{Concurrency: 8}.BenchEnergy(5)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := MarshalBench(serial)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := MarshalBench(pooled)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb, pb) {
		t.Fatal("BENCH_energy payload differs between serial and 8-way pooled runs")
	}

	if got := len(serial.Benchmarks); got != len(progs.KernelBenchmarks()) {
		t.Fatalf("energy axis covers %d kernel benchmarks, want %d", got, len(progs.KernelBenchmarks()))
	}
	if got := len(serial.Baselines); got != 5 {
		t.Fatalf("energy axis covers %d baselines, want 5", got)
	}
	if !serial.OrderingOK {
		t.Fatal("baseline ordering verdict failed")
	}
	for _, p := range serial.Benchmarks {
		if p.TotalPJ == 0 || p.CPUActivePJ == 0 {
			t.Errorf("%s: zero joules attributed (total %d, cpu-active %d)", p.Benchmark, p.TotalPJ, p.CPUActivePJ)
		}
		sum := p.CPUActivePJ + p.CPUSleepPJ + p.RadioPJ + p.UARTPJ + p.ADCPJ + p.TimerPJ
		if sum != p.TotalPJ {
			t.Errorf("%s: components sum to %d pJ, total says %d", p.Benchmark, sum, p.TotalPJ)
		}
	}
}

// Attaching the meter must not perturb the simulation: same program, same
// cycle count, with and without metering.
func TestEnergyMeterDoesNotPerturbRun(t *testing.T) {
	for _, kb := range progs.KernelBenchmarks() {
		bare, err := runSenSmart(kernel.Config{}, energyBenchLimit, kb.Program.Clone())
		if err != nil {
			t.Fatal(err)
		}
		metered, err := runSenSmart(kernel.Config{Energy: new(energy.Meter)}, energyBenchLimit, kb.Program.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if bare.Cycles != metered.Cycles || bare.Idle != metered.Idle {
			t.Errorf("%s: metered run took %d cycles (%d idle), bare run %d (%d idle)",
				kb.Name, metered.Cycles, metered.Idle, bare.Cycles, bare.Idle)
		}
	}
}

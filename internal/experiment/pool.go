package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner executes the evaluation harnesses with a configurable worker pool.
// Every sweep point (benchmark kernel, computation size, tree size) builds
// its own mcu.Machine and kernel.Kernel, so points are independent and can
// run on any worker; results are merged in sweep order, which makes the
// output byte-identical to a serial run regardless of worker count.
type Runner struct {
	// Concurrency is the number of workers a sweep fans out to.
	// 0 selects runtime.GOMAXPROCS(0); 1 forces the serial path.
	Concurrency int
}

// workers resolves the effective worker count.
func (r Runner) workers() int {
	if r.Concurrency > 0 {
		return r.Concurrency
	}
	return runtime.GOMAXPROCS(0)
}

// runPoints computes fn(0..n-1) on up to `workers` goroutines and returns
// the results ordered by index — never by completion order. With workers
// <= 1 it runs everything inline on the caller's goroutine (the `-parallel
// 1` debugging mode: no goroutines, deterministic stepping under a
// debugger). On error the sweep stops handing out new indices, in-flight
// points finish, and the error of the lowest failing index is returned —
// the same error a serial run would surface.
func runPoints[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Runner executes the evaluation harnesses with a configurable worker pool.
// Every sweep point (benchmark kernel, computation size, tree size) builds
// its own mcu.Machine and kernel.Kernel, so points are independent and can
// run on any worker; results are merged in sweep order, which makes the
// output byte-identical to a serial run regardless of worker count.
type Runner struct {
	// Concurrency is the number of workers a sweep fans out to.
	// 0 selects runtime.GOMAXPROCS(0); 1 forces the serial path.
	Concurrency int
	// Progress, when non-nil, receives one report per completed sweep point
	// (sweep name, point index, simulated cycles, wall time) — the live
	// feedback channel behind `sensmart-bench` progress lines and the
	// `-serve` dashboard. Reports fire from worker goroutines in completion
	// order; Progress serializes internally. nil disables reporting and
	// costs one pointer compare per point.
	Progress *telemetry.Progress
}

// workers resolves the effective worker count.
func (r Runner) workers() int {
	if r.Concurrency > 0 {
		return r.Concurrency
	}
	return runtime.GOMAXPROCS(0)
}

// runPoints computes fn(0..n-1) on up to `workers` goroutines and returns
// the results ordered by index — never by completion order. With workers
// <= 1 it runs everything inline on the caller's goroutine (the `-parallel
// 1` debugging mode: no goroutines, deterministic stepping under a
// debugger). On error the sweep stops handing out new indices, in-flight
// points finish, and the error of the lowest failing index is returned —
// the same error a serial run would surface.
// runProgress wraps a sweep's point function with per-point wall-clock
// timing and progress reporting. cyclesOf extracts the simulated-cycle
// measure from a completed point for the Mcyc/s rate (nil when the sweep
// has no natural cycle count). With a nil Progress the wrapper is the
// identity — the sweep pays nothing.
func runProgress[T any](r Runner, sweep string, n int, cyclesOf func(T) uint64, fn func(i int) (T, error)) func(i int) (T, error) {
	if r.Progress == nil {
		return fn
	}
	return func(i int) (T, error) {
		start := time.Now()
		v, err := fn(i)
		if err != nil {
			return v, err
		}
		var cycles uint64
		if cyclesOf != nil {
			cycles = cyclesOf(v)
		}
		r.Progress.Point(sweep, i+1, n, cycles, time.Since(start))
		return v, nil
	}
}

func runPoints[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

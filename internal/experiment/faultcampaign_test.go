package experiment

import (
	"bytes"
	"testing"

	"repro/internal/faultinject"
)

// TestFaultCampaignPoolDeterminism demands the campaign report be
// byte-identical between a serial run and an 8-worker pool: trial sites
// derive from (seed, benchmark, trial) alone and results merge in suite
// order, so worker scheduling must never show through.
func TestFaultCampaignPoolDeterminism(t *testing.T) {
	const seed, trials = 7, 6
	serial, err := Runner{Concurrency: 1}.FaultCampaign(seed, trials)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Runner{Concurrency: 8}.FaultCampaign(seed, trials)
	if err != nil {
		t.Fatal(err)
	}
	a, err := MarshalBench(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalBench(pooled)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("serial and pooled campaign reports differ:\n--- serial ---\n%s\n--- pooled ---\n%s", a, b)
	}
}

// TestFaultCampaignCoversSuite checks the report includes every campaign
// benchmark with the configured trial count and only known verdicts.
func TestFaultCampaignCoversSuite(t *testing.T) {
	b, err := Runner{Concurrency: 4}.FaultCampaign(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind != "faultcampaign" || b.SchemaVersion != BenchSchemaVersion {
		t.Fatalf("bad header: kind=%q schema=%d", b.Kind, b.SchemaVersion)
	}
	want := faultinject.Benchmarks()
	if len(b.Benchmarks) != len(want) {
		t.Fatalf("got %d benchmark reports, want %d", len(b.Benchmarks), len(want))
	}
	known := map[string]bool{
		faultinject.VerdictContainedFault:     true,
		faultinject.VerdictContainedRecovered: true,
		faultinject.VerdictSilentCorruption:   true,
		faultinject.VerdictCrossTaskBreach:    true,
		faultinject.VerdictKernelCompromise:   true,
	}
	for i, rep := range b.Benchmarks {
		if rep.Benchmark != want[i].Name {
			t.Errorf("report %d is %q, want %q (suite order must be stable)", i, rep.Benchmark, want[i].Name)
		}
		if len(rep.Trials) != 6 {
			t.Errorf("%s: %d trials, want 6", rep.Benchmark, len(rep.Trials))
		}
		total := 0
		for v, n := range rep.Verdicts {
			if !known[v] {
				t.Errorf("%s: unknown verdict %q", rep.Benchmark, v)
			}
			total += n
		}
		if total != 6 {
			t.Errorf("%s: verdict counts sum to %d, want 6", rep.Benchmark, total)
		}
	}
}

// TestCompareFaultCampaignFiles round-trips a campaign payload through the
// BENCH_* comparator: identical files must diff clean.
func TestCompareFaultCampaignFiles(t *testing.T) {
	b, err := Runner{Concurrency: 4}.FaultCampaign(5, 6)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	oldPath, newPath := dir+"/old.json", dir+"/new.json"
	if _, err := WriteBenchFile(oldPath, b); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteBenchFile(newPath, b); err != nil {
		t.Fatal(err)
	}
	tbl, regressions, err := CompareBenchFiles(oldPath, newPath, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Fatalf("identical files regressed: %v", regressions)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("comparator produced no rows for faultcampaign files")
	}
	// Every non-contained trial carries its forensic report, so whenever a
	// benchmark owes any, the comparator must emit a forensic_coverage row
	// and identical files must diff it clean at full coverage.
	owed := 0
	for _, rep := range b.Benchmarks {
		_, o := forensicCoverage(rep)
		owed += o
	}
	covRows := 0
	for _, row := range tbl.Rows {
		if row[1] != "forensic_coverage" {
			continue
		}
		covRows++
		if row[3] != "1.00 ratio" || row[5] != "ok" {
			t.Errorf("forensic_coverage row for %s: new=%q verdict=%q, want full coverage diffing clean",
				row[0], row[3], row[5])
		}
	}
	if owed > 0 && covRows == 0 {
		t.Errorf("%d trials owe forensic reports but no forensic_coverage row was emitted", owed)
	}
}

package experiment

import (
	"bytes"
	"testing"

	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/trace"
)

// tracedWorkload returns a fresh two-task benchmark mix (context switches
// and preemptions included) for the determinism checks.
func tracedWorkload(t *testing.T) []*image.Program {
	t.Helper()
	benches := progs.KernelBenchmarks()
	var programs []*image.Program
	for _, b := range benches {
		if b.Name == "lfsr" || b.Name == "timer" {
			programs = append(programs, b.Program.Clone())
		}
	}
	if len(programs) != 2 {
		t.Fatalf("expected lfsr+timer benchmarks, got %d programs", len(programs))
	}
	return programs
}

// TestTraceStreamsAreByteIdentical runs the same traced workload twice and
// requires the two event streams — and the Chrome exports rendered from
// them — to be byte-identical. The simulation owns every cycle, so any
// difference is nondeterminism leaking into the recorder.
func TestTraceStreamsAreByteIdentical(t *testing.T) {
	rec1, _, err := TraceRun(4_000_000_000, tracedWorkload(t)...)
	if err != nil {
		t.Fatal(err)
	}
	rec2, _, err := TraceRun(4_000_000_000, tracedWorkload(t)...)
	if err != nil {
		t.Fatal(err)
	}
	enc1, enc2 := rec1.Encode(), rec2.Encode()
	if len(enc1) == 0 {
		t.Fatal("empty trace stream")
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("trace streams differ between identical runs (%d vs %d bytes)", len(enc1), len(enc2))
	}

	var json1, json2 bytes.Buffer
	opts := trace.ChromeOptions{ClockHz: mcu.ClockHz, ServiceName: kernel.ServiceName}
	if err := trace.WriteChrome(&json1, rec1.Events(), opts); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChrome(&json2, rec2.Events(), opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(json1.Bytes(), json2.Bytes()) {
		t.Fatal("Chrome exports differ between identical runs")
	}
}

// TestKernelOverheadParallelMatchesSerial reruns the kernel-overhead
// experiment with the worker pool on and off: tracing must not break the
// harness guarantee that results merge in sweep order with byte-identical
// rendered output.
func TestKernelOverheadParallelMatchesSerial(t *testing.T) {
	serial, err := Runner{Concurrency: 1}.KernelOverhead()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Concurrency: 4}.KernelOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Render(), parallel.Render(); s != p {
		t.Errorf("serial and parallel overhead tables differ:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
}

package experiment

import (
	"bytes"
	"testing"

	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/trace"
)

// tracedWorkload returns a fresh two-task benchmark mix (context switches
// and preemptions included) for the determinism checks.
func tracedWorkload(t *testing.T) []*image.Program {
	t.Helper()
	benches := progs.KernelBenchmarks()
	var programs []*image.Program
	for _, b := range benches {
		if b.Name == "lfsr" || b.Name == "timer" {
			programs = append(programs, b.Program.Clone())
		}
	}
	if len(programs) != 2 {
		t.Fatalf("expected lfsr+timer benchmarks, got %d programs", len(programs))
	}
	return programs
}

// TestTraceStreamsAreByteIdentical runs the same traced workload twice and
// requires the two event streams — and the Chrome exports rendered from
// them — to be byte-identical. The simulation owns every cycle, so any
// difference is nondeterminism leaking into the recorder.
func TestTraceStreamsAreByteIdentical(t *testing.T) {
	rec1, _, err := TraceRun(4_000_000_000, tracedWorkload(t)...)
	if err != nil {
		t.Fatal(err)
	}
	rec2, _, err := TraceRun(4_000_000_000, tracedWorkload(t)...)
	if err != nil {
		t.Fatal(err)
	}
	enc1, enc2 := rec1.Encode(), rec2.Encode()
	if len(enc1) == 0 {
		t.Fatal("empty trace stream")
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("trace streams differ between identical runs (%d vs %d bytes)", len(enc1), len(enc2))
	}

	var json1, json2 bytes.Buffer
	opts := trace.ChromeOptions{ClockHz: mcu.ClockHz, ServiceName: kernel.ServiceName}
	if err := trace.WriteChrome(&json1, rec1.Events(), opts); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChrome(&json2, rec2.Events(), opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(json1.Bytes(), json2.Bytes()) {
		t.Fatal("Chrome exports differ between identical runs")
	}
}

// TestProfileExportsAreByteIdentical runs the same profiled workload twice
// and requires the pprof and folded exports to match byte for byte. The
// pprof writer interns strings and ids in flatten order and emits a
// zero-timestamp gzip header, so any divergence is real nondeterminism in
// the attribution path.
func TestProfileExportsAreByteIdentical(t *testing.T) {
	export := func() ([]byte, []byte) {
		t.Helper()
		prof, err := ProfileRun(4_000_000_000, tracedWorkload(t)...)
		if err != nil {
			t.Fatal(err)
		}
		var pb, folded bytes.Buffer
		if err := prof.WritePprof(&pb); err != nil {
			t.Fatal(err)
		}
		if err := prof.WriteFolded(&folded); err != nil {
			t.Fatal(err)
		}
		return pb.Bytes(), folded.Bytes()
	}
	pb1, folded1 := export()
	pb2, folded2 := export()
	if len(pb1) == 0 || len(folded1) == 0 {
		t.Fatal("empty profile export")
	}
	if !bytes.Equal(pb1, pb2) {
		t.Fatalf("pprof exports differ between identical runs (%d vs %d bytes)", len(pb1), len(pb2))
	}
	if !bytes.Equal(folded1, folded2) {
		t.Fatalf("folded exports differ between identical runs:\n--- a ---\n%s--- b ---\n%s", folded1, folded2)
	}
}

// TestHotspotsParallelMatchesSerial reruns the hotspots experiment with the
// worker pool on and off: profiled runs must keep the engine's guarantee
// that results merge in sweep order with byte-identical rendered output.
func TestHotspotsParallelMatchesSerial(t *testing.T) {
	serial, err := Runner{Concurrency: 1}.Hotspots(5)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Concurrency: 4}.Hotspots(5)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Render(), parallel.Render(); s != p {
		t.Errorf("serial and parallel hotspot tables differ:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
}

// TestKernelOverheadParallelMatchesSerial reruns the kernel-overhead
// experiment with the worker pool on and off: tracing must not break the
// harness guarantee that results merge in sweep order with byte-identical
// rendered output.
func TestKernelOverheadParallelMatchesSerial(t *testing.T) {
	serial, err := Runner{Concurrency: 1}.KernelOverhead()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Concurrency: 4}.KernelOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Render(), parallel.Render(); s != p {
		t.Errorf("serial and parallel overhead tables differ:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
}

package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/progs"
	"repro/internal/snapshot"
)

// WarmstartRow is one sweep point's final state fingerprint: the kernel
// gauges a BENCH consumer plots, plus a hash of the full Metrics rendering
// so "byte-identical to the cold run" is checked over the complete
// per-task/per-service breakdown, not just the headline counters.
type WarmstartRow struct {
	Budget          uint64 `json:"budget"`
	Cycles          uint64 `json:"cycles"`
	IdleCycles      uint64 `json:"idle_cycles"`
	Done            bool   `json:"done"`
	ContextSwitches int    `json:"context_switches"`
	Preemptions     int    `json:"preemptions"`
	BranchTraps     uint64 `json:"branch_traps"`
	Relocations     int    `json:"relocations"`
	RelocatedBytes  uint64 `json:"relocated_bytes"`
	Terminations    int    `json:"terminations"`
	UARTBytes       int    `json:"uart_bytes"`
	MetricsSHA256   string `json:"metrics_sha256"`
}

// WarmstartBench is the payload of BENCH_warmstart.json: the same budget
// sweep run cold (every point from cycle 0) and warm (fast-forwarded once to
// a shared checkpoint at PrefixCycles, then fanned out under the worker
// pool), with the identity verdict and the measured prefix-skip speedup.
type WarmstartBench struct {
	BenchMeta
	Workload      []string       `json:"workload"`
	PrefixCycles  uint64         `json:"prefix_cycles"`
	CheckpointAt  uint64         `json:"checkpoint_at"`
	SnapshotBytes int            `json:"snapshot_bytes"`
	Budgets       []uint64       `json:"budgets"`
	Cold          []WarmstartRow `json:"cold"`
	Warm          []WarmstartRow `json:"warm"`
	Identical     bool           `json:"identical"`
	ColdWallNS    int64          `json:"cold_wall_ns"`
	WarmWallNS    int64          `json:"warm_wall_ns"`
	Speedup       float64        `json:"speedup"`
}

// warmstartSystem builds a fresh system with the full benchmark suite
// deployed in suite order — the multi-task workload every sweep point (and
// the warm parent) shares.
func warmstartSystem() (*core.System, []string, error) {
	sys := core.NewSystem()
	var names []string
	for _, kb := range progs.KernelBenchmarks() {
		if _, err := sys.Deploy(kb.Program); err != nil {
			return nil, nil, fmt.Errorf("deploy %s: %w", kb.Name, err)
		}
		names = append(names, kb.Name)
	}
	return sys, names, nil
}

// warmstartRow runs sys to the absolute cycle budget and fingerprints the
// final state.
func warmstartRow(sys *core.System, budget uint64) (WarmstartRow, error) {
	if err := sys.Run(budget); err != nil {
		return WarmstartRow{}, err
	}
	m := sys.Machine()
	k := sys.Kernel()
	sum := sha256.Sum256([]byte(sys.Metrics().Render()))
	return WarmstartRow{
		Budget:          budget,
		Cycles:          m.Cycles(),
		IdleCycles:      m.IdleCycles(),
		Done:            sys.Done(),
		ContextSwitches: k.Stats.ContextSwitches,
		Preemptions:     k.Stats.Preemptions,
		BranchTraps:     k.Stats.BranchTraps,
		Relocations:     k.Stats.Relocations,
		RelocatedBytes:  k.Stats.RelocatedBytes,
		Terminations:    k.Stats.Terminations,
		UARTBytes:       len(m.UARTOutput()),
		MetricsSHA256:   hex.EncodeToString(sum[:]),
	}, nil
}

// BenchWarmstart measures the warm-checkpoint fan-out the snapshot subsystem
// exists for. Cold pass: every budget runs from cycle 0. Warm pass: one
// parent boots, runs to prefix, checkpoints; every budget then restores from
// the serialized checkpoint (sharing the parent's flash image copy-on-write)
// and runs only the suffix. Both passes use the same worker pool, so the
// speedup isolates the skipped prefix. points budgets are spaced one prefix
// apart starting at 2*prefix.
func (r Runner) BenchWarmstart(prefix uint64, points int) (*WarmstartBench, error) {
	if prefix == 0 {
		prefix = 2_000_000
	}
	if points <= 0 {
		points = 6
	}
	budgets := make([]uint64, points)
	for i := range budgets {
		budgets[i] = prefix * uint64(i+2)
	}
	out := &WarmstartBench{
		BenchMeta:    NewBenchMeta("warmstart", "kernel benchmark suite (multitask)"),
		PrefixCycles: prefix,
		Budgets:      budgets,
	}

	coldStart := time.Now()
	cold, err := runPoints(r.workers(), points, runProgress(r, "warmstart/cold", points,
		func(row WarmstartRow) uint64 { return row.Cycles },
		func(i int) (WarmstartRow, error) {
			sys, _, err := warmstartSystem()
			if err != nil {
				return WarmstartRow{}, err
			}
			if err := sys.Boot(); err != nil {
				return WarmstartRow{}, err
			}
			return warmstartRow(sys, budgets[i])
		}))
	if err != nil {
		return nil, fmt.Errorf("warmstart cold sweep: %w", err)
	}
	out.Cold = cold
	out.ColdWallNS = time.Since(coldStart).Nanoseconds()

	warmStart := time.Now()
	parent, names, err := warmstartSystem()
	if err != nil {
		return nil, err
	}
	out.Workload = names
	if err := parent.Boot(); err != nil {
		return nil, err
	}
	if err := parent.Run(prefix); err != nil {
		return nil, fmt.Errorf("warmstart prefix run: %w", err)
	}
	st, err := parent.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("warmstart checkpoint: %w", err)
	}
	out.CheckpointAt = st.Machine.Cycle
	blob, err := snapshot.Encode(st)
	if err != nil {
		return nil, err
	}
	out.SnapshotBytes = len(blob)
	// The restore path every variant takes is the serialized one — decode
	// from the bytes, not the in-memory State — so the sweep exercises
	// exactly what a -restore from disk would. Decoded once and shared:
	// Restore only reads the State, deep-copying what it keeps.
	decoded, err := snapshot.Decode(blob)
	if err != nil {
		return nil, err
	}
	warm, err := runPoints(r.workers(), points, runProgress(r, "warmstart/warm", points,
		func(row WarmstartRow) uint64 { return row.Cycles },
		func(i int) (WarmstartRow, error) {
			sys, _, err := warmstartSystem()
			if err != nil {
				return WarmstartRow{}, err
			}
			sys.AdoptImage(parent)
			if err := sys.Restore(decoded); err != nil {
				return WarmstartRow{}, err
			}
			return warmstartRow(sys, budgets[i])
		}))
	if err != nil {
		return nil, fmt.Errorf("warmstart warm sweep: %w", err)
	}
	out.Warm = warm
	out.WarmWallNS = time.Since(warmStart).Nanoseconds()

	out.Identical = true
	for i := range cold {
		if cold[i] != warm[i] {
			out.Identical = false
		}
	}
	if !out.Identical {
		return out, fmt.Errorf("warmstart: warm rows diverge from cold rows")
	}
	if out.WarmWallNS > 0 {
		out.Speedup = float64(out.ColdWallNS) / float64(out.WarmWallNS)
	}
	return out, nil
}

package experiment

import (
	"fmt"

	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/progs"
	"repro/internal/rewriter"
	"repro/internal/trace"
)

// overheadPoint is one benchmark's kernel-overhead breakdown.
type overheadPoint struct {
	name    string
	metrics *trace.Metrics
}

// KernelOverhead runs the seven kernel benchmarks with tracing enabled and
// reports where the kernel's cycles go per benchmark: service overheads,
// context switches, relocation and boot, against the application cycles —
// the per-phase attribution the ROADMAP's hot-path work needs. Each point
// also cross-checks the recorded KTRAP windows against the kernel's
// per-class cycle ledger, so the harness fails loudly if the trace and the
// Table II cost model in cost.go ever drift apart.
func (r Runner) KernelOverhead() (*Table, error) {
	benches := progs.KernelBenchmarks()
	points, err := runPoints(r.workers(), len(benches), runProgress(r, "overhead", len(benches),
		func(p overheadPoint) uint64 { return p.metrics.TotalCycles },
		func(i int) (overheadPoint, error) {
			rec := trace.New()
			cfg := kernel.Config{Trace: rec}
			run, err := runSenSmart(cfg, 4_000_000_000, benches[i].Program.Clone())
			if err != nil {
				return overheadPoint{}, fmt.Errorf("%s: %w", benches[i].Name, err)
			}
			if err := ReconcileTrapCycles(rec.Events(), &run.K.Stats, run.K.Symbolizer().Name); err != nil {
				return overheadPoint{}, fmt.Errorf("%s: %w", benches[i].Name, err)
			}
			return overheadPoint{name: benches[i].Name, metrics: run.K.Metrics()}, nil
		}))
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:    "overhead",
		Title: "Kernel-overhead breakdown per benchmark (cycles)",
		Header: []string{"benchmark", "total", "app", "kernel", "kernel%",
			"services", "switch", "reloc", "boot", "traps", "events"},
	}
	for _, p := range points {
		m := p.metrics
		var traps uint64
		for _, s := range m.Services {
			traps += s.Calls
		}
		busy := m.TotalCycles - m.IdleCycles
		tbl.Rows = append(tbl.Rows, []string{
			p.name,
			utoa(m.TotalCycles),
			utoa(m.AppCycles),
			utoa(m.KernelCycles),
			pct(m.KernelCycles, busy),
			utoa(m.ServiceOverheadCycles),
			utoa(m.SwitchCycles),
			utoa(m.RelocCycles),
			utoa(m.BootCycles),
			utoa(traps),
			itoa(m.Events),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"kernel% = kernel cycles / busy (non-idle) cycles; services column is Table II overhead summed over all KTRAP dispatches",
		"each run's KTRAP trace windows were reconciled against the kernel's per-class cycle ledger (cost.go)")
	return tbl, nil
}

// TraceRun boots one traced kernel with one task per program, runs to
// completion (or the cycle limit), and returns the recorder plus the metrics
// snapshot — the backing for the -trace/-metrics flags of sensmart-bench.
func TraceRun(limit uint64, programs ...*image.Program) (*trace.Recorder, *trace.Metrics, error) {
	rec := trace.New()
	run, err := runSenSmart(kernel.Config{Trace: rec}, limit, programs...)
	if err != nil {
		return nil, nil, err
	}
	if err := ReconcileTrapCycles(rec.Events(), &run.K.Stats, run.K.Symbolizer().Name); err != nil {
		return nil, nil, err
	}
	return rec, run.K.Metrics(), nil
}

// ReconcileTrapCycles checks the designed cycle-decomposition invariant over
// a recorded stream: for every service class, the sum of trap-window clock
// deltas minus the relocation/compaction/switch/idle cycles recorded inside
// those windows must equal the cycles the kernel's ledger says it charged
// for that class (Stats.ServiceCycles). Any drift between the trace layer
// and the cost model in cost.go fails here. sym resolves a flash word
// address to a human-readable site (nil falls back to raw addresses), so a
// failure names the offending trap site, not just a number.
func ReconcileTrapCycles(events []trace.Event, stats *kernel.Stats, sym func(pc uint32) string) error {
	site := func(pc uint32) string {
		if sym == nil {
			return fmt.Sprintf("pc %#x", pc)
		}
		return fmt.Sprintf("pc %#x in %s", pc, sym(pc))
	}
	var window [16]uint64 // per-class: sum of (exit - enter) - nested non-service charges
	var sites [16]map[uint32]uint64
	var open = map[int32]trace.Event{}
	var nested = map[int32]uint64{}
	for _, e := range events {
		switch e.Kind {
		case trace.KindTrapEnter:
			open[e.Task] = e
			nested[e.Task] = 0
		case trace.KindTrapExit:
			enter, ok := open[e.Task]
			if !ok {
				return fmt.Errorf("trace: trap exit without enter for task %d at cycle %d (%s)",
					e.Task, e.Cycle, site(e.PC))
			}
			delete(open, e.Task)
			delta := e.Cycle - enter.Cycle
			sub := nested[e.Task]
			if sub > delta {
				return fmt.Errorf("trace: nested charges %d exceed trap window %d (task %d, cycle %d, %s)",
					sub, delta, e.Task, e.Cycle, site(enter.PC))
			}
			class := e.Arg & 15
			window[class] += delta - sub
			if sites[class] == nil {
				sites[class] = map[uint32]uint64{}
			}
			sites[class][enter.PC] += delta - sub
		case trace.KindReloc, trace.KindRelease, trace.KindSwitch:
			// A service that relocates, compacts, or schedules mid-trap books
			// those cycles on the nested event, not on the service.
			for task := range open {
				nested[task] += e.Arg2
			}
		case trace.KindIdle:
			for task := range open {
				nested[task] += e.Arg
			}
		}
	}
	for class := 1; class < 16; class++ {
		if got, want := window[class], stats.ServiceCycles[class]; got != want {
			hotPC, hot := uint32(0), uint64(0)
			for pc, c := range sites[class] {
				if c > hot || (c == hot && pc < hotPC) {
					hotPC, hot = pc, c
				}
			}
			return fmt.Errorf("trace: class %v trap windows sum to %d cycles, ledger charged %d (hottest trap site: %s, %d cycles)",
				rewriter.Class(class), got, want, site(hotPC), hot)
		}
	}
	return nil
}

package experiment

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/profile"
	"repro/internal/progs"
	"repro/internal/rewriter"
)

// runProfiled boots one profiled kernel over the benchmark and runs it to
// completion.
func runProfiled(t *testing.T, kb progs.KernelBenchmark, opts profile.Options) (*profile.Profiler, *senSmartRun) {
	t.Helper()
	prof := profile.New(opts)
	run, err := runSenSmart(kernel.Config{Profile: prof}, 4_000_000_000, kb.Program.Clone())
	if err != nil {
		t.Fatalf("%s: %v", kb.Name, err)
	}
	return prof, run
}

// TestProfilerMatchesKernelLedger is the identity check of the profiler: for
// each of the seven kernel benchmarks, every cycle the machine executed must
// be attributed exactly once, and the per-task / per-class attribution must
// equal the kernel's own always-on ledgers.
func TestProfilerMatchesKernelLedger(t *testing.T) {
	for _, kb := range progs.KernelBenchmarks() {
		kb := kb
		t.Run(kb.Name, func(t *testing.T) {
			prof, run := runProfiled(t, kb, profile.Options{})
			if got, want := prof.TotalCycles(), run.Cycles; got != want {
				t.Errorf("TotalCycles = %d, machine ran %d", got, want)
			}
			m := run.K.Metrics()
			for _, tm := range m.Tasks {
				if got, want := prof.TaskTotal(int32(tm.ID)), tm.RunCycles; got != want {
					t.Errorf("task %s: profiler total %d, ledger RunCycles %d", tm.Name, got, want)
				}
			}
			var svcSum uint64
			for class := rewriter.Class(1); class < 16; class++ {
				got := prof.ServiceOverhead(class)
				want := run.K.Stats.ServiceOverhead[class]
				if got != want {
					t.Errorf("class %v: profiler overhead %d, ledger %d", class, got, want)
				}
				svcSum += got
			}
			if svcSum != m.ServiceOverheadCycles {
				t.Errorf("kernel.<service> frames sum to %d, ServiceOverhead ledger %d",
					svcSum, m.ServiceOverheadCycles)
			}
			if prof.BootCycles() != m.BootCycles {
				t.Errorf("boot = %d, want %d", prof.BootCycles(), m.BootCycles)
			}
			if prof.SwitchCycles() != m.SwitchCycles {
				t.Errorf("switch = %d, want %d", prof.SwitchCycles(), m.SwitchCycles)
			}
			if got, want := prof.RelocCycles()+prof.CompactionCycles(), m.RelocCycles; got != want {
				t.Errorf("reloc+compact = %d, want %d", got, want)
			}
			if prof.IdleCycles() != m.IdleCycles {
				t.Errorf("idle = %d, want %d", prof.IdleCycles(), m.IdleCycles)
			}
		})
	}
}

// TestProfilerHotSymbols pins the expected hot application symbol for the
// treesearch and alloc workloads and checks the emitted pprof parses (a
// protobuf decode of the gzip stream recovers the same symbol names).
func TestProfilerHotSymbols(t *testing.T) {
	allocProg, err := progs.AllocDemo(24)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		prog progs.KernelBenchmark
		want string // expected hot application symbol (frame suffix)
	}{
		{"treesearch",
			progs.KernelBenchmark{Name: "treesearch",
				Program: progs.MustTreeSearch(progs.TreeSearchParams{Searches: 400})},
			".search"},
		// The allocation demo's hot loop is the list builder, which calls
		// into the allocator; .alloc itself must also appear (checked below).
		{"alloc", progs.KernelBenchmark{Name: "alloc", Program: allocProg}, ".build"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			prof, _ := runProfiled(t, c.prog, profile.Options{})
			var hot string
			for _, e := range prof.Top(0) {
				if strings.HasPrefix(e.Frame, "kernel.") || e.Frame == "idle" ||
					e.Frame == "machine" || strings.HasPrefix(e.Frame, "machine.") {
					continue
				}
				hot = e.Frame
				break
			}
			if !strings.HasSuffix(hot, c.want) {
				t.Errorf("hot symbol = %q, want one ending in %q\ntop: %+v", hot, c.want, prof.Top(8))
			}
			if c.name == "alloc" {
				seen := false
				for _, e := range prof.Top(0) {
					if strings.HasSuffix(e.Frame, ".alloc") && e.Cycles > 0 {
						seen = true
					}
				}
				if !seen {
					t.Errorf("allocator symbol .alloc missing from profile\ntop: %+v", prof.Top(8))
				}
			}

			var buf bytes.Buffer
			if err := prof.WritePprof(&buf); err != nil {
				t.Fatal(err)
			}
			names, err := pprofFunctionNames(buf.Bytes())
			if err != nil {
				t.Fatalf("emitted pprof does not parse: %v", err)
			}
			found := false
			for _, n := range names {
				if n == hot {
					found = true
				}
			}
			if !found {
				t.Errorf("pprof function table missing hot symbol %q (has %v)", hot, names)
			}
		})
	}
}

// pprofFunctionNames decodes the gzipped profile.proto stream far enough to
// return every function name — an in-test stand-in for `go tool pprof -top`.
func pprofFunctionNames(gzdata []byte) ([]string, error) {
	zr, err := gzip.NewReader(bytes.NewReader(gzdata))
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(zr)
	if err != nil {
		return nil, err
	}
	var (
		strtab    []string
		nameIdxes []uint64
	)
	readVarint := func(b []byte) (uint64, int) {
		var v uint64
		for i := 0; i < len(b); i++ {
			v |= uint64(b[i]&0x7f) << (7 * i)
			if b[i] < 0x80 {
				return v, i + 1
			}
		}
		return 0, 0
	}
	for i := 0; i < len(data); {
		tag, n := readVarint(data[i:])
		if n == 0 {
			break
		}
		i += n
		field, wire := tag>>3, tag&7
		switch wire {
		case 0:
			_, n := readVarint(data[i:])
			i += n
		case 2:
			l, n := readVarint(data[i:])
			i += n
			body := data[i : i+int(l)]
			i += int(l)
			switch field {
			case 6: // string_table
				strtab = append(strtab, string(body))
			case 5: // function
				for j := 0; j < len(body); {
					ftag, fn := readVarint(body[j:])
					if fn == 0 {
						break
					}
					j += fn
					if ftag&7 == 2 {
						fl, fn2 := readVarint(body[j:])
						j += fn2 + int(fl)
						continue
					}
					v, fn2 := readVarint(body[j:])
					j += fn2
					if ftag>>3 == 2 { // Function.name
						nameIdxes = append(nameIdxes, v)
					}
				}
			}
		default:
			return nil, io.ErrUnexpectedEOF
		}
	}
	var names []string
	for _, idx := range nameIdxes {
		if int(idx) < len(strtab) {
			names = append(names, strtab[idx])
		}
	}
	return names, nil
}

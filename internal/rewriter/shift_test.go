package rewriter

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// naiveMap is the obviously-correct reference for ShiftTable.Map.
func naiveMap(inflations []uint32, orig uint32) uint32 {
	n := uint32(0)
	for _, a := range inflations {
		if a < orig {
			n++
		}
	}
	return orig + n
}

func TestShiftTableMatchesNaiveCount(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(60)
		points := make([]uint32, n)
		for i := range points {
			points[i] = uint32(r.Intn(4096))
		}
		tab := NewShiftTable(points)
		for i := 0; i < 128; i++ {
			orig := uint32(r.Intn(5000))
			if got, want := tab.Map(orig), naiveMap(points, orig); got != want {
				t.Logf("seed %d: Map(%d) = %d, want %d (points %v)", seed, orig, got, want, points)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftTableMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		points := make([]uint32, r.Intn(40))
		for i := range points {
			points[i] = uint32(r.Intn(1000))
		}
		tab := NewShiftTable(points)
		prev := tab.Map(0)
		for a := uint32(1); a < 1100; a++ {
			cur := tab.Map(a)
			if cur <= prev {
				t.Logf("seed %d: Map not strictly increasing at %d: %d -> %d", seed, a, prev, cur)
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftTableEntriesSortedCopy(t *testing.T) {
	tab := NewShiftTable([]uint32{9, 3, 7, 1})
	e := tab.Entries()
	if !sort.SliceIsSorted(e, func(i, j int) bool { return e[i] < e[j] }) {
		t.Errorf("entries not sorted: %v", e)
	}
	e[0] = 999 // mutating the copy must not affect the table
	if tab.Map(2) != 3 {
		t.Error("Entries returned an aliased slice")
	}
}

func TestShiftTableMapByte(t *testing.T) {
	tab := NewShiftTable([]uint32{4})
	// Word 3 (bytes 6,7) is before the inflation point: unshifted.
	if got := tab.MapByte(6); got != 6 {
		t.Errorf("MapByte(6) = %d, want 6", got)
	}
	// Word 5 (bytes 10,11) is after: shifted by one word = two bytes.
	if got := tab.MapByte(10); got != 12 {
		t.Errorf("MapByte(10) = %d, want 12", got)
	}
	if got := tab.MapByte(11); got != 13 {
		t.Errorf("MapByte(11) = %d, want 13 (odd byte preserved)", got)
	}
}

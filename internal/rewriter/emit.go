package rewriter

import (
	"fmt"
	"strings"

	"repro/internal/avr"
	"repro/internal/image"
)

// emit produces the naturalized image after layout has stabilized.
func emit(prog *image.Program, units []unit, index map[uint32]int, cfg Config) (*Naturalized, error) {
	nat := &Naturalized{Orig: prog}

	// Build the shift table from the 1-word instructions that inflated.
	var inflations []uint32
	for i := range units {
		u := &units[i]
		if u.patch != nil && !u.isData && u.in.Words() == 1 {
			inflations = append(inflations, u.pc)
		}
	}
	nat.Shift = NewShiftTable(inflations)

	mapAddr := func(orig uint32) (uint32, error) {
		j, ok := index[orig]
		if !ok {
			return 0, fmt.Errorf("rewriter: %s: target %#x is mid-instruction", prog.Name, orig)
		}
		return units[j].natPC, nil
	}

	// Assign local ids and finish patch records.
	var localID uint16
	for i := range units {
		u := &units[i]
		if u.patch == nil {
			continue
		}
		p := u.patch
		p.Local = localID
		localID++
		p.NatPC = u.natPC
		p.NatNext = u.natPC + 2
		for k := 1; k < len(p.Group); k++ {
			p.NatNext += uint32(p.Group[k].Words())
		}
		switch p.Class {
		case ClassBranch, ClassCall:
			t, err := mapAddr(p.OrigTarget)
			if err != nil {
				return nil, err
			}
			p.NatTarget = t
		}
		p.TrampKey = trampKey(p, cfg)
		nat.Patches = append(nat.Patches, p)
	}

	// Emit the patched code region.
	var words []uint16
	for i := range units {
		u := &units[i]
		if int(u.natPC) != len(words) {
			return nil, fmt.Errorf("rewriter: %s: layout drift at %#x", prog.Name, u.pc)
		}
		switch {
		case u.isData:
			words = append(words, u.raw)
		case u.patch != nil:
			w, err := avr.Encode(avr.Inst{Op: avr.OpKtrap, Imm: int32(u.patch.Local)})
			if err != nil {
				return nil, err
			}
			words = append(words, w...)
		case u.member:
			// Grouped members keep their original bytes; the group leader's
			// kernel service executes them and jumps past.
			w, err := avr.Encode(u.in)
			if err != nil {
				return nil, err
			}
			words = append(words, w...)
		default:
			w, err := reencode(u, units, index, mapAddr, nat)
			if err != nil {
				return nil, err
			}
			words = append(words, w...)
		}
	}
	nat.CodeWords = len(words)

	// Append merged trampoline bodies (size-accounting regions; the KTRAP
	// slots dispatch directly to the kernel services). A shared body serves
	// every site with the same key; site-specific constants (branch targets,
	// heap addresses) live in small per-site table entries next to it.
	seen := make(map[string]int) // key -> index into nat.Trampolines
	perSite := 0
	for _, p := range nat.Patches {
		shared, site := trampolineWords(p)
		perSite += site
		if shared == 0 {
			continue
		}
		if idx, ok := seen[p.TrampKey]; ok && !cfg.NoTrampolineMerge {
			nat.Trampolines[idx].Sites++
			continue
		}
		seen[p.TrampKey] = len(nat.Trampolines)
		nat.Trampolines = append(nat.Trampolines, Trampoline{Key: p.TrampKey, Words: shared, Sites: 1})
	}
	for _, tr := range nat.Trampolines {
		nat.TrampolineWords += tr.Words
	}
	nat.TrampolineWords += perSite
	for i := 0; i < nat.TrampolineWords; i++ {
		words = append(words, 0x0000) // NOP filler standing in for the body
	}

	// Append the shift table blob: one flash word per inflation entry.
	nat.ShiftWords = nat.Shift.Len()
	for _, a := range nat.Shift.Entries() {
		words = append(words, uint16(a))
	}

	// Assemble the output program with remapped symbols.
	out := prog.Clone()
	out.Words = words
	entry, err := mapAddr(prog.Entry)
	if err != nil {
		return nil, err
	}
	out.Entry = entry
	for i := range out.Symbols {
		if out.Symbols[i].Kind != image.SymCode {
			continue
		}
		a, err := mapAddr(out.Symbols[i].Addr)
		if err != nil {
			return nil, err
		}
		out.Symbols[i].Addr = a
	}
	var ranges []image.Range
	for _, r := range prog.TextData {
		start := nat.Shift.Map(r.Start)
		ranges = append(ranges, image.Range{Start: start, End: start + (r.End - r.Start)})
	}
	out.TextData = ranges
	nat.Program = out
	return nat, nil
}

// reencode re-emits a kept instruction, fixing control-transfer targets for
// the shifted layout.
func reencode(u *unit, units []unit, index map[uint32]int,
	mapAddr func(uint32) (uint32, error), nat *Naturalized) ([]uint16, error) {
	in := u.in
	switch in.Op {
	case avr.OpRjmp, avr.OpBrbs, avr.OpBrbc:
		t, err := mapAddr(in.RelTarget(u.pc))
		if err != nil {
			return nil, err
		}
		in.Imm = int32(int64(t) - int64(u.natPC) - 1)
	case avr.OpJmp, avr.OpCall:
		t, err := mapAddr(uint32(in.Imm))
		if err != nil {
			return nil, err
		}
		in.Imm = int32(t)
		// The absolute word needs the flash base added at link time.
		nat.Relocs = append(nat.Relocs, u.natPC+1)
	}
	return avr.Encode(in)
}

// trampolineWords models the size of the real trampoline a patch site jumps
// through on the mote: a shared body (merged across identical sites, even
// across programs — Section IV-A) plus a small per-site table entry for
// constants the body parameterizes over (branch target, call target, heap
// address). The body sizes follow the operations Section IV describes:
// context-preserving prologue/epilogue, counter update or address
// translation, bounds check, and the re-executed original operation.
func trampolineWords(p *Patch) (shared, site int) {
	switch p.Class {
	case ClassBranch:
		if p.Orig.Op == avr.OpBrbs || p.Orig.Op == avr.OpBrbc {
			return 12, 2 // shared eval+counter body; per-site target pair
		}
		return 8, 2
	case ClassIndirectJump:
		return 9, 0 // shift-table lookup + ijmp; fully shared
	case ClassIndirectCall:
		return 12, 0
	case ClassCall:
		return 10, 2 // shared stack check; per-site target+return pair
	case ClassDirectIO:
		return 0, 0 // rewritten in place; no trampoline body
	case ClassDirectMem:
		return 8, 1 // shared displacement+bounds body; per-site address
	case ClassIndirectMem:
		return 12 + 3*(len(p.Group)-1), 0 // translate once, run the group
	case ClassSPRead:
		return 4, 0
	case ClassSPWrite:
		return 6, 0
	case ClassSleep:
		return 3, 0
	case ClassLpm:
		return 9, 0 // program-memory translation + lpm
	case ClassReservedIO:
		return 6, 1
	case ClassExit:
		return 2, 0
	}
	return 0, 0
}

// trampKey builds the merge key: sites whose trampoline bodies would be
// byte-identical share one body ("many trampolines are similar, they can be
// merged", Section IV-A). Site-specific constants (targets, addresses) are
// part of the key because they are baked into the body.
func trampKey(p *Patch, cfg Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", p.Class)
	switch p.Class {
	case ClassBranch:
		// Site constants live in the per-site table; the body is shared per
		// branch kind and condition.
		fmt.Fprintf(&b, "|%s|%d", p.Orig.Op, p.Orig.Src)
	case ClassCall:
		fmt.Fprintf(&b, "|%s", p.Orig.Op)
	case ClassIndirectJump, ClassIndirectCall, ClassSleep, ClassExit:
		// Fully shared across sites (and across programs at link time).
	case ClassDirectMem, ClassDirectIO, ClassReservedIO:
		fmt.Fprintf(&b, "|%s|r%d", p.Orig.Op, p.Orig.Dst)
	case ClassIndirectMem:
		for _, in := range p.Group {
			fmt.Fprintf(&b, "|%s", avr.Disasm(in))
		}
	case ClassSPRead, ClassSPWrite:
		fmt.Fprintf(&b, "|r%d|%#x", p.Orig.Dst, p.Orig.Imm)
	case ClassLpm:
		fmt.Fprintf(&b, "|%s|r%d", p.Orig.Op, p.Orig.Dst)
	}
	if cfg.NoTrampolineMerge {
		fmt.Fprintf(&b, "|site%#x", p.OrigPC)
	}
	return b.String()
}

// SharedTrampolineWords computes the total trampoline words when the given
// naturalized programs are linked together on one node with cross-program
// trampoline merging ("they can be merged to save space even if they belong
// to different application programs", Section IV-A), alongside the
// unshared per-program sum.
func SharedTrampolineWords(nats ...*Naturalized) (shared, separate int) {
	seen := make(map[string]bool)
	for _, nat := range nats {
		separate += nat.TrampolineWords
		for _, p := range nat.Patches {
			w, site := trampolineWords(p)
			shared += site
			if w == 0 || seen[p.TrampKey] {
				continue
			}
			seen[p.TrampKey] = true
			shared += w
		}
	}
	return shared, separate
}

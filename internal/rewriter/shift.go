package rewriter

import "sort"

// ShiftTable is the paper's sorted array of inflation points: the original
// word addresses of instructions that grew from 16 to 32 bits. The
// naturalized address of any original program address is the address plus
// the number of inflation points strictly before it.
type ShiftTable struct {
	inflations []uint32 // sorted original word addresses
}

// NewShiftTable builds a table from the (sorted or unsorted) inflation
// addresses.
func NewShiftTable(inflations []uint32) *ShiftTable {
	t := &ShiftTable{inflations: append([]uint32(nil), inflations...)}
	sort.Slice(t.inflations, func(i, j int) bool { return t.inflations[i] < t.inflations[j] })
	return t
}

// Len returns the number of inflation entries (each costs one flash word).
func (t *ShiftTable) Len() int { return len(t.inflations) }

// Map translates an original program word address to its naturalized
// address. This is the lookup the kernel performs for indirect branches,
// charging the program-memory translation cost of Table II.
func (t *ShiftTable) Map(orig uint32) uint32 {
	// Binary search: count inflation points strictly below orig.
	lo, hi := 0, len(t.inflations)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.inflations[mid] < orig {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return orig + uint32(lo)
}

// MapByte translates an original program-memory byte address (as used by
// LPM through Z) to its naturalized byte address.
func (t *ShiftTable) MapByte(orig uint16) uint32 {
	word := uint32(orig >> 1)
	return t.Map(word)*2 + uint32(orig&1)
}

// Entries returns a copy of the inflation addresses (for the flash blob).
func (t *ShiftTable) Entries() []uint32 {
	return append([]uint32(nil), t.inflations...)
}

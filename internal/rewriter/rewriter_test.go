package rewriter

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/avr"
	"repro/internal/avr/asm"
	"repro/internal/image"
)

func mustRewrite(t *testing.T, src string, cfg Config) *Naturalized {
	t.Helper()
	p, err := asm.Assemble(t.Name(), src)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := Rewrite(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nat
}

// instCount counts instructions (not words), skipping data-in-text.
func instCount(p *image.Program, limitWords int) int {
	n := 0
	for pc := uint32(0); pc < uint32(limitWords); {
		if p.InTextData(pc) {
			pc++
			n++
			continue
		}
		in, err := avr.Decode(p.Words[pc:])
		if err != nil {
			pc++
			n++
			continue
		}
		n++
		pc += uint32(in.Words())
	}
	return n
}

const loopSrc = `
.data
buf: .space 4
.text
main:
    ldi r16, 10
    ldi r26, lo8(buf)
    ldi r27, hi8(buf)
loop:
    st X+, r16
    ld r17, -X
    dec r16
    brne loop
    sts buf, r16
    lds r18, buf
    call fn
    sleep
    rjmp main
fn:
    in r24, SPL
    in r25, SPH
    ret
`

func TestRewritePreservesInstructionCount(t *testing.T) {
	nat := mustRewrite(t, loopSrc, Config{})
	origCount := instCount(nat.Orig, len(nat.Orig.Words))
	natCount := instCount(nat.Program, nat.CodeWords)
	if origCount != natCount {
		t.Errorf("instruction count changed: orig %d, naturalized %d", origCount, natCount)
	}
}

func TestRewriteClassifiesSites(t *testing.T) {
	nat := mustRewrite(t, loopSrc, Config{})
	got := make(map[Class]int)
	for _, p := range nat.Patches {
		got[p.Class]++
	}
	wants := []struct {
		class Class
		min   int
	}{
		{ClassIndirectMem, 1}, // st X+ / ld -X (grouped)
		{ClassBranch, 2},      // brne loop (backward), rjmp main (backward)
		{ClassDirectMem, 2},   // sts buf / lds buf
		{ClassCall, 1},        // call fn
		{ClassSleep, 1},
		{ClassSPRead, 2}, // in SPL, in SPH
	}
	for _, w := range wants {
		if got[w.class] < w.min {
			t.Errorf("class %v: got %d sites, want >= %d (all: %v)", w.class, got[w.class], w.min, got)
		}
	}
}

func TestRewriteGroupsIndirectAccesses(t *testing.T) {
	nat := mustRewrite(t, loopSrc, Config{})
	var group *Patch
	for _, p := range nat.Patches {
		if p.Class == ClassIndirectMem {
			group = p
			break
		}
	}
	if group == nil {
		t.Fatal("no indirect-mem patch")
	}
	if len(group.Group) != 2 {
		t.Fatalf("group length = %d, want 2 (st X+ then ld -X)", len(group.Group))
	}
	if group.Group[0].Op != avr.OpStXInc || group.Group[1].Op != avr.OpLdXDec {
		t.Errorf("group ops = %v,%v", group.Group[0].Op, group.Group[1].Op)
	}
	// NatNext must skip the member slot.
	if group.NatNext != group.NatPC+2+1 {
		t.Errorf("NatNext = %#x, want NatPC+3", group.NatNext)
	}

	// With grouping disabled there must be two separate patches.
	natNo := mustRewrite(t, loopSrc, Config{NoGrouping: true})
	count := 0
	for _, p := range natNo.Patches {
		if p.Class == ClassIndirectMem {
			count++
			if len(p.Group) != 1 {
				t.Errorf("NoGrouping produced a group of %d", len(p.Group))
			}
		}
	}
	if count != 2 {
		t.Errorf("NoGrouping indirect-mem patches = %d, want 2", count)
	}
}

func TestShiftTableMapsEveryInstruction(t *testing.T) {
	nat := mustRewrite(t, loopSrc, Config{})
	// Walk the original; each instruction's naturalized address per the
	// shift table must hold either the original (kept) instruction or a
	// KTRAP slot.
	orig := nat.Orig
	for pc := uint32(0); pc < uint32(len(orig.Words)); {
		in, err := avr.Decode(orig.Words[pc:])
		if err != nil {
			t.Fatal(err)
		}
		natPC := nat.Shift.Map(pc)
		got, err := avr.Decode(nat.Program.Words[natPC:])
		if err != nil {
			t.Fatalf("decode naturalized at %#x: %v", natPC, err)
		}
		if got.Op != in.Op && got.Op != avr.OpKtrap {
			t.Errorf("orig %#x (%s) mapped to %#x holding %s", pc, avr.Disasm(in), natPC, avr.Disasm(got))
		}
		pc += uint32(in.Words())
	}
}

func TestRewriteKeepsForwardBranchesAndRetargets(t *testing.T) {
	nat := mustRewrite(t, `
main:
    ldi r16, 1
    sts 0x0200, r16   ; inflates? no: lds/sts stay 2 words
    ld r17, X         ; inflates 1 -> 2
    tst r16
    breq skip
    ld r18, X         ; inflates
skip:
    break
`, Config{})
	// Find the kept breq in the naturalized code and verify its target is
	// the naturalized 'skip'.
	var found bool
	for pc := uint32(0); pc < uint32(nat.CodeWords); {
		in, err := avr.Decode(nat.Program.Words[pc:])
		if err != nil {
			t.Fatal(err)
		}
		if in.Op == avr.OpBrbs {
			found = true
			skipSym, ok := nat.Program.Lookup("skip")
			if !ok {
				t.Fatal("no skip symbol")
			}
			if got := in.RelTarget(pc); got != skipSym.Addr {
				t.Errorf("breq target = %#x, want %#x", got, skipSym.Addr)
			}
		}
		pc += uint32(in.Words())
	}
	if !found {
		t.Error("forward breq should be kept native")
	}
}

func TestRewritePatchesOverflowingForwardBranch(t *testing.T) {
	// Build a forward branch whose displacement fits originally (just under
	// 64 words) but overflows once the many LD instructions double in size.
	var b strings.Builder
	b.WriteString("main:\n    tst r16\n    breq far\n")
	for i := 0; i < 60; i++ {
		b.WriteString("    ld r17, X\n")
	}
	b.WriteString("far:\n    break\n")
	nat := mustRewrite(t, b.String(), Config{})
	var patched bool
	for _, p := range nat.Patches {
		if p.Class == ClassBranch && !p.Backward {
			patched = true
			farSym, _ := nat.Program.Lookup("far")
			if p.NatTarget != farSym.Addr {
				t.Errorf("patched branch NatTarget = %#x, want %#x", p.NatTarget, farSym.Addr)
			}
		}
	}
	if !patched {
		t.Error("overflowing forward branch should have been patched")
	}
}

func TestTrampolineMerging(t *testing.T) {
	src := `
main:
    in r24, SPL
    in r24, SPL
    in r24, SPL
    sleep
    sleep
    break
`
	merged := mustRewrite(t, src, Config{})
	unmerged := mustRewrite(t, src, Config{NoTrampolineMerge: true})
	if merged.TrampolineWords >= unmerged.TrampolineWords {
		t.Errorf("merging should shrink trampolines: merged %d words, unmerged %d",
			merged.TrampolineWords, unmerged.TrampolineWords)
	}
	// Identical IN r24,SPL sites share one body.
	for _, tr := range merged.Trampolines {
		if strings.HasPrefix(tr.Key, "sp-read") && tr.Sites != 3 {
			t.Errorf("sp-read trampoline sites = %d, want 3", tr.Sites)
		}
	}
}

func TestRewriteTimer3AccessIsReserved(t *testing.T) {
	nat := mustRewrite(t, `
main:
    lds r24, TCNT3L
    lds r25, TCNT3H
    break
`, Config{})
	count := 0
	for _, p := range nat.Patches {
		if p.Class == ClassReservedIO {
			count++
		}
	}
	if count != 2 {
		t.Errorf("reserved-io patches = %d, want 2", count)
	}
}

func TestRewriteDirectIOStaysCheap(t *testing.T) {
	nat := mustRewrite(t, `
main:
    lds r24, 0x0052    ; TCNT0 via data space: I/O area
    sts 0x0038, r24    ; PORTB via data space
    break
`, Config{})
	for _, p := range nat.Patches {
		if p.Class != ClassDirectIO {
			continue
		}
		if shared, site := trampolineWords(p); shared != 0 || site != 0 {
			t.Errorf("direct I/O should have no trampoline body")
		}
	}
}

func TestRewriteTextDataPreserved(t *testing.T) {
	nat := mustRewrite(t, `
main:
    ldi r30, lo8(pmbyte(tab))
    ldi r31, hi8(pmbyte(tab))
    lpm r24, Z+
    break
tab:
    .dw 0xAFFE, 0x1234
`, Config{})
	tab, ok := nat.Program.Lookup("tab")
	if !ok {
		t.Fatal("tab symbol lost")
	}
	if nat.Program.Words[tab.Addr] != 0xAFFE || nat.Program.Words[tab.Addr+1] != 0x1234 {
		t.Errorf("table moved incorrectly: %#x %#x at %#x",
			nat.Program.Words[tab.Addr], nat.Program.Words[tab.Addr+1], tab.Addr)
	}
	if !nat.Program.InTextData(tab.Addr) {
		t.Error("naturalized TextData range lost")
	}
	// The LPM byte-address mapping must find the same data.
	origTab, _ := nat.Orig.Lookup("tab")
	if got := nat.Shift.MapByte(uint16(origTab.Addr * 2)); got != tab.Addr*2 {
		t.Errorf("MapByte = %#x, want %#x", got, tab.Addr*2)
	}
}

func TestRewriteInflationBound(t *testing.T) {
	nat := mustRewrite(t, loopSrc, Config{})
	origBytes := nat.Orig.SizeBytes()
	natBytes := nat.Program.SizeBytes()
	// The toy program is almost entirely patch sites, so its inflation is
	// far above what realistic programs see (Figure 4 checks the <=200%%
	// claim on the seven kernel benchmarks); here we only bound the
	// worst case.
	if natBytes > 8*origBytes {
		t.Errorf("inflation %d%% is unreasonable even for a toy: %d -> %d bytes",
			100*(natBytes-origBytes)/origBytes, origBytes, natBytes)
	}
}

func TestRewriteLocalIDsAreSequentialAndDecodable(t *testing.T) {
	nat := mustRewrite(t, loopSrc, Config{})
	for i, p := range nat.Patches {
		if int(p.Local) != i {
			t.Fatalf("patch %d has local id %d", i, p.Local)
		}
		in, err := avr.Decode(nat.Program.Words[p.NatPC:])
		if err != nil {
			t.Fatal(err)
		}
		if in.Op != avr.OpKtrap || in.Imm != int32(p.Local) {
			t.Errorf("slot at %#x = %s, want ktrap %d", p.NatPC, avr.Disasm(in), p.Local)
		}
	}
}

func TestRewriteEntryRemapped(t *testing.T) {
	nat := mustRewrite(t, `
boot:
    ld r0, X     ; inflates before main
    ld r1, X
.entry main
main:
    break
`, Config{})
	mainSym, _ := nat.Program.Lookup("main")
	if nat.Program.Entry != mainSym.Addr {
		t.Errorf("entry = %#x, want %#x", nat.Program.Entry, mainSym.Addr)
	}
	if nat.Program.Entry == nat.Orig.Entry {
		t.Error("entry should have shifted")
	}
}

func TestGroupingStopsAtLabels(t *testing.T) {
	// A code label between two consecutive accesses is a basic-block leader
	// (it may be an indirect-branch target), so the group must not span it.
	nat := mustRewrite(t, `
main:
    ld r16, X+
mid:
    ld r17, X+
    break
`, Config{})
	for _, p := range nat.Patches {
		if p.Class == ClassIndirectMem && len(p.Group) != 1 {
			t.Errorf("group of %d spans the label", len(p.Group))
		}
	}
}

func TestGroupingStopsAfterSkip(t *testing.T) {
	// SBRC may skip exactly one instruction; if the two loads were fused
	// into one service at the first load's slot, the skip-over target would
	// land on a raw, untranslated instruction.
	nat := mustRewrite(t, `
main:
    sbrc r16, 0
    ld r17, X+
    ld r18, X+
    break
`, Config{})
	for _, p := range nat.Patches {
		if p.Class == ClassIndirectMem && len(p.Group) != 1 {
			t.Errorf("group of %d crosses a skip boundary", len(p.Group))
		}
	}
}

func TestGroupingStopsWhenLoadClobbersPointer(t *testing.T) {
	// "ld r26, X+" overwrites XL mid-run; executing the second access with
	// the pre-clobber translation would be wrong, so the group must end.
	nat := mustRewrite(t, `
main:
    ld r26, X+
    ld r17, X+
    break
`, Config{})
	for _, p := range nat.Patches {
		if p.Class == ClassIndirectMem && len(p.Group) != 1 {
			t.Errorf("group of %d spans a pointer clobber", len(p.Group))
		}
	}
}

func TestGroupLimitIsFour(t *testing.T) {
	nat := mustRewrite(t, `
main:
    ld r1, X+
    ld r2, X+
    ld r3, X+
    ld r4, X+
    ld r5, X+
    ld r6, X+
    break
`, Config{})
	var sizes []int
	for _, p := range nat.Patches {
		if p.Class == ClassIndirectMem {
			sizes = append(sizes, len(p.Group))
		}
	}
	if len(sizes) != 2 || sizes[0] != 4 || sizes[1] != 2 {
		t.Errorf("group sizes = %v, want [4 2]", sizes)
	}
}

func TestCrossProgramTrampolineSharing(t *testing.T) {
	a := mustRewrite(t, loopSrc, Config{})
	// A second, distinct program with overlapping patch shapes.
	b := mustRewrite(t, `
main:
    in r24, SPL
    in r25, SPH
    ld r16, X+
    sleep
    rjmp main
`, Config{})
	shared, separate := SharedTrampolineWords(a, b)
	if shared >= separate {
		t.Errorf("cross-program merge should save space: shared %d, separate %d",
			shared, separate)
	}
	// One program alone must match its own trampoline accounting.
	s1, p1 := SharedTrampolineWords(a)
	if s1 != a.TrampolineWords || p1 != a.TrampolineWords {
		t.Errorf("single-program sharing = %d/%d, want %d", s1, p1, a.TrampolineWords)
	}
}

func TestRewriteNeverPanicsOnArbitraryWords(t *testing.T) {
	// The rewriter consumes binaries; on garbage input it must return an
	// error, never panic or loop.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		words := make([]uint16, 4+r.Intn(64))
		for i := range words {
			words[i] = uint16(r.Intn(0x10000))
		}
		prog := &image.Program{Name: "fuzz", Words: words, HeapBase: 0x100}
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("seed %d: panic: %v", seed, p)
			}
		}()
		nat, err := Rewrite(prog, Config{})
		if err != nil {
			return true // rejecting garbage is correct
		}
		// If it claims success, the output must be internally consistent.
		return nat.Program.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Package rewriter implements SenSmart's base-station binary rewriter
// (Section IV-A of the paper). It analyzes a compiled application image and
// produces the "naturalized" program: every instruction that affects control
// flow, accesses data memory, manipulates the stack pointer, or touches an
// OS-reserved resource is replaced in place by a same-instruction-count
// kernel-service escape, while trampoline code and the shift table are
// appended after the program.
//
// Execution model note (documented in DESIGN.md): in this reproduction the
// kernel runtime is implemented in Go, entered through the 2-word KTRAP
// escape that takes the place of the paper's inline JMP/CALL into a
// trampoline. Trampoline bodies are still emitted into the image with
// realistic sizes so that code-inflation measurements (Figure 4) remain
// meaningful, and each kernel service charges the cycle costs of Table II.
package rewriter

import (
	"fmt"

	"repro/internal/avr"
	"repro/internal/image"
	"repro/internal/ioregs"
)

// Class identifies the kernel service a patched instruction traps into.
type Class uint8

const (
	// ClassBranch is a patched relative branch or jump. Backward branches
	// carry the 1-of-256 software-trap preemption counter (Section IV-B).
	ClassBranch Class = iota + 1
	// ClassIndirectJump is IJMP: program-memory address translation through
	// the shift table.
	ClassIndirectJump
	// ClassIndirectCall is ICALL: stack check plus program-memory
	// translation.
	ClassIndirectCall
	// ClassCall is CALL/RCALL: stack check plus direct transfer.
	ClassCall
	// ClassDirectIO is LDS/STS to the identity-mapped I/O area.
	ClassDirectIO
	// ClassDirectMem is LDS/STS to the task's heap (static displacement).
	ClassDirectMem
	// ClassIndirectMem is LD/LDD/ST/STD through X/Y/Z, possibly a grouped
	// run translated once (Section IV-C2).
	ClassIndirectMem
	// ClassSPRead is IN Rd, SPL/SPH.
	ClassSPRead
	// ClassSPWrite is OUT SPL/SPH, Rr.
	ClassSPWrite
	// ClassSleep is SLEEP (kernel-mediated yield).
	ClassSleep
	// ClassLpm is LPM: program-memory data access translation.
	ClassLpm
	// ClassReservedIO is access to the kernel-reserved Timer3 registers.
	ClassReservedIO
	// ClassExit is an application BREAK, which SenSmart turns into the
	// task-exit service (a bare BREAK has no meaning under the kernel).
	ClassExit
)

func (c Class) String() string {
	switch c {
	case ClassBranch:
		return "branch"
	case ClassIndirectJump:
		return "ijmp"
	case ClassIndirectCall:
		return "icall"
	case ClassCall:
		return "call"
	case ClassDirectIO:
		return "direct-io"
	case ClassDirectMem:
		return "direct-mem"
	case ClassIndirectMem:
		return "indirect-mem"
	case ClassSPRead:
		return "sp-read"
	case ClassSPWrite:
		return "sp-write"
	case ClassSleep:
		return "sleep"
	case ClassLpm:
		return "lpm"
	case ClassReservedIO:
		return "reserved-io"
	case ClassExit:
		return "exit"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Patch describes one rewritten site. Addresses are program-relative word
// addresses; the linker and kernel add the task's flash base.
type Patch struct {
	Local  uint16 // local service id; the linker offsets it globally
	Class  Class
	Orig   avr.Inst // first (or only) original instruction
	OrigPC uint32   // original word address
	NatPC  uint32   // word address of the KTRAP slot in the naturalized code
	// Group holds the full run of original instructions for a grouped
	// memory access (Group[0] == Orig). len(Group) == 1 otherwise.
	Group []avr.Inst
	// OrigTarget/NatTarget are the static control-transfer target in
	// original and naturalized addresses (branch/call classes).
	OrigTarget uint32
	NatTarget  uint32
	// NatNext is the naturalized fall-through address (after the KTRAP slot
	// and, for groups, the skipped member slots).
	NatNext uint32
	// Backward marks branches that participate in software-trap preemption.
	Backward bool
	// TrampKey identifies the trampoline body this site shares.
	TrampKey string
}

// Naturalized is the rewriter's output for one program.
type Naturalized struct {
	// Program holds the naturalized image: patched code, then trampoline
	// bodies, then the shift table blob. Entry and code symbols are
	// remapped to naturalized addresses.
	Program *image.Program
	// Orig is the input program (untouched).
	Orig *image.Program
	// Patches indexed by local id.
	Patches []*Patch
	// Shift maps original word addresses to naturalized ones.
	Shift *ShiftTable
	// Relocs lists word addresses (program-relative) of JMP/CALL address
	// words that the linker must offset by the flash base.
	Relocs []uint32
	// Region sizes in words.
	CodeWords, TrampolineWords, ShiftWords int
	// Trampolines lists the merged trampoline bodies (for size reporting).
	Trampolines []Trampoline
}

// Trampoline is one merged trampoline body.
type Trampoline struct {
	Key   string
	Words int
	Sites int // how many patch sites share it
}

// Clone returns an independent copy of the naturalized program, for handing
// one cached rewrite to many concurrent sweep points. The image (which the
// kernel links against a flash base) is deep-copied; Patches, the shift
// table, and Orig are immutable after Rewrite and are shared.
func (n *Naturalized) Clone() *Naturalized {
	c := *n
	c.Program = n.Program.Clone()
	c.Patches = append([]*Patch(nil), n.Patches...)
	c.Relocs = append([]uint32(nil), n.Relocs...)
	c.Trampolines = append([]Trampoline(nil), n.Trampolines...)
	return &c
}

// Config controls rewriting. The zero value gives the paper's behaviour.
type Config struct {
	// NoGrouping disables the grouped-memory-access optimization
	// (Section IV-C2), for ablation studies.
	NoGrouping bool
	// NoTrampolineMerge disables merging of identical trampolines, for
	// ablation studies.
	NoTrampolineMerge bool
	// GroupLimit caps the length of a grouped memory-access run. The paper
	// observes 2- or 4-instruction groups; default 4.
	GroupLimit int
}

func (c Config) groupLimit() int {
	if c.GroupLimit <= 0 {
		return 4
	}
	return c.GroupLimit
}

// reservedDataAddrs are the Timer3 registers the kernel reserves as its
// global clock; application access traps into the virtualization service.
var reservedDataAddrs = map[uint16]bool{
	ioregs.TCNT3L: true,
	ioregs.TCNT3H: true,
	ioregs.TCCR3B: true,
	ioregs.ETIFR:  true,
	ioregs.ETIMSK: true,
}

// ReservedDataAddr reports whether a data address belongs to the
// kernel-reserved Timer3 register set.
func ReservedDataAddr(addr uint16) bool { return reservedDataAddrs[addr] }

// unit is one original-program element: an instruction or a data word.
type unit struct {
	pc     uint32 // original word address
	in     avr.Inst
	isData bool
	raw    uint16 // data word contents

	patch  *Patch // non-nil once the unit is patched (set on group leaders)
	member bool   // true for non-leader members of a grouped access
	natPC  uint32
	words  int // naturalized slot size in words
}

// Rewrite naturalizes prog for execution under the SenSmart kernel.
func Rewrite(prog *image.Program, cfg Config) (*Naturalized, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	units, index, err := decodeUnits(prog)
	if err != nil {
		return nil, err
	}
	leaders := findLeaders(prog, units, index)

	// Initial classification.
	for i := range units {
		u := &units[i]
		if u.isData || u.member || u.patch != nil {
			continue
		}
		classifyUnit(units, i, index, leaders, cfg)
	}

	// Fixpoint: lay out addresses, then patch any kept relative branch whose
	// displacement no longer encodes; repeat until stable.
	for {
		layout(units)
		again, err := patchOverflowingBranches(units, index)
		if err != nil {
			return nil, err
		}
		if !again {
			break
		}
	}

	return emit(prog, units, index, cfg)
}

// decodeUnits walks the program and decodes every instruction, honouring the
// data-in-text ranges from the symbol information.
func decodeUnits(prog *image.Program) ([]unit, map[uint32]int, error) {
	var units []unit
	index := make(map[uint32]int)
	for pc := uint32(0); pc < uint32(len(prog.Words)); {
		index[pc] = len(units)
		if prog.InTextData(pc) {
			units = append(units, unit{pc: pc, isData: true, raw: prog.Words[pc], words: 1})
			pc++
			continue
		}
		in, err := avr.Decode(prog.Words[pc:])
		if err != nil {
			return nil, nil, fmt.Errorf("rewriter: %s: decode at %#x: %w", prog.Name, pc, err)
		}
		if in.Op == avr.OpKtrap {
			// Application images never contain KTRAP: this is a plain BREAK
			// whose following word happened to look like a service id.
			in = avr.Inst{Op: avr.OpBreak}
		}
		units = append(units, unit{pc: pc, in: in, words: in.Words()})
		pc += uint32(in.Words())
	}
	return units, index, nil
}

// findLeaders computes basic-block leader addresses: the entry, all code
// symbols (indirect-branch targets), static branch targets, fall-throughs of
// control transfers, and both successors of skip instructions.
func findLeaders(prog *image.Program, units []unit, index map[uint32]int) map[uint32]bool {
	leaders := map[uint32]bool{prog.Entry: true, 0: true}
	for _, s := range prog.Symbols {
		if s.Kind == image.SymCode {
			leaders[s.Addr] = true
		}
	}
	for i := range units {
		u := &units[i]
		if u.isData {
			continue
		}
		next := u.pc + uint32(u.in.Words())
		switch {
		case u.in.IsBranch() || u.in.Op == avr.OpRcall:
			leaders[u.in.RelTarget(u.pc)] = true
			leaders[next] = true
		case u.in.Op == avr.OpJmp || u.in.Op == avr.OpCall:
			leaders[uint32(u.in.Imm)] = true
			leaders[next] = true
		case u.in.IsSkip():
			// Both the possibly-skipped instruction and the skip-over
			// target are leaders, so grouped accesses never straddle them.
			leaders[next] = true
			if j, ok := index[next]; ok && !units[j].isData {
				leaders[next+uint32(units[j].in.Words())] = true
			}
		case u.in.IsControlTransfer():
			leaders[next] = true
		}
	}
	return leaders
}

// classifyUnit decides whether units[i] needs patching and installs the
// patch record (including grouped runs).
func classifyUnit(units []unit, i int, index map[uint32]int, leaders map[uint32]bool, cfg Config) {
	u := &units[i]
	in := u.in
	switch {
	case in.IsMemAccess() && !in.IsDirectMem():
		group := []avr.Inst{in}
		if !cfg.NoGrouping {
			ptr, _ := in.PointerReg()
			clobbers := func(g avr.Inst) bool {
				return g.IsLoad() && (g.Dst == ptr || g.Dst == ptr+1)
			}
			for j := i + 1; j < len(units) && len(group) < cfg.groupLimit(); j++ {
				// Once any member has loaded into the pointer register, the
				// shared translation no longer describes later accesses.
				if clobbers(group[len(group)-1]) {
					break
				}
				next := &units[j]
				if next.isData || leaders[next.pc] {
					break
				}
				nin := next.in
				if !nin.IsMemAccess() || nin.IsDirectMem() {
					break
				}
				if p, _ := nin.PointerReg(); p != ptr {
					break
				}
				group = append(group, nin)
				next.member = true
			}
		}
		u.patch = &Patch{Class: ClassIndirectMem, Orig: in, OrigPC: u.pc, Group: group}

	case in.Op == avr.OpLds || in.Op == avr.OpSts:
		addr := uint16(in.Imm)
		switch {
		case ReservedDataAddr(addr):
			u.patch = &Patch{Class: ClassReservedIO, Orig: in, OrigPC: u.pc}
		case addr < 0x100:
			u.patch = &Patch{Class: ClassDirectIO, Orig: in, OrigPC: u.pc}
		default:
			u.patch = &Patch{Class: ClassDirectMem, Orig: in, OrigPC: u.pc}
		}

	case in.IsBranch():
		target := in.RelTarget(u.pc)
		if target <= u.pc { // backward: preemption trap site
			u.patch = &Patch{Class: ClassBranch, Orig: in, OrigPC: u.pc,
				OrigTarget: target, Backward: true}
		}

	case in.Op == avr.OpJmp:
		if uint32(in.Imm) <= u.pc {
			u.patch = &Patch{Class: ClassBranch, Orig: in, OrigPC: u.pc,
				OrigTarget: uint32(in.Imm), Backward: true}
		}

	case in.Op == avr.OpCall:
		u.patch = &Patch{Class: ClassCall, Orig: in, OrigPC: u.pc, OrigTarget: uint32(in.Imm)}
	case in.Op == avr.OpRcall:
		u.patch = &Patch{Class: ClassCall, Orig: in, OrigPC: u.pc, OrigTarget: in.RelTarget(u.pc)}
	case in.Op == avr.OpIcall:
		u.patch = &Patch{Class: ClassIndirectCall, Orig: in, OrigPC: u.pc}
	case in.Op == avr.OpIjmp:
		u.patch = &Patch{Class: ClassIndirectJump, Orig: in, OrigPC: u.pc}

	case in.ReadsSP():
		u.patch = &Patch{Class: ClassSPRead, Orig: in, OrigPC: u.pc}
	case in.WritesSP():
		u.patch = &Patch{Class: ClassSPWrite, Orig: in, OrigPC: u.pc}

	case in.Op == avr.OpSleep:
		u.patch = &Patch{Class: ClassSleep, Orig: in, OrigPC: u.pc}

	case in.Op == avr.OpLpm || in.Op == avr.OpLpmZ || in.Op == avr.OpLpmZInc:
		u.patch = &Patch{Class: ClassLpm, Orig: in, OrigPC: u.pc}

	case in.Op == avr.OpBreak:
		u.patch = &Patch{Class: ClassExit, Orig: in, OrigPC: u.pc}
	}
	if u.patch != nil && u.patch.Group == nil {
		u.patch.Group = []avr.Inst{in}
	}
}

// layout assigns naturalized addresses: patched slots are 2 words (KTRAP),
// everything else keeps its size; grouped members keep their original bytes.
func layout(units []unit) {
	nat := uint32(0)
	for i := range units {
		u := &units[i]
		u.natPC = nat
		if u.patch != nil {
			u.words = 2
		} else {
			u.words = u.in.Words()
			if u.isData {
				u.words = 1
			}
		}
		nat += uint32(u.words)
	}
}

// patchOverflowingBranches finds kept relative branches whose displacement
// no longer fits after inflation and converts them to ClassBranch patches.
// It reports whether anything changed.
func patchOverflowingBranches(units []unit, index map[uint32]int) (bool, error) {
	changed := false
	for i := range units {
		u := &units[i]
		if u.isData || u.patch != nil || u.member {
			continue
		}
		if !u.in.IsBranch() {
			continue
		}
		target := u.in.RelTarget(u.pc)
		j, ok := index[target]
		if !ok {
			return false, fmt.Errorf("rewriter: branch at %#x targets mid-instruction %#x", u.pc, target)
		}
		disp := int64(units[j].natPC) - int64(u.natPC) - 1
		var fits bool
		switch u.in.Op {
		case avr.OpRjmp:
			fits = disp >= -2048 && disp <= 2047
		default: // BRBS/BRBC
			fits = disp >= -64 && disp <= 63
		}
		if !fits {
			u.patch = &Patch{Class: ClassBranch, Orig: u.in, OrigPC: u.pc,
				OrigTarget: target, Group: []avr.Inst{u.in}}
			changed = true
		}
	}
	return changed, nil
}

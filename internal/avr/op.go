// Package avr defines the AVR instruction-set subset used by SenSmart: the
// instruction model, genuine ATmega128 binary encodings (16- and 32-bit),
// a decoder, a disassembler, and per-instruction base cycle counts.
//
// The package is a pure ISA description: it knows how instructions look and
// what class they belong to, but not how to execute them. Execution lives in
// internal/mcu; patching decisions live in internal/rewriter.
package avr

import "fmt"

// Op identifies an instruction mnemonic (with addressing mode folded in, so
// e.g. "LD Rd, X+" and "LD Rd, -X" are distinct Ops).
type Op uint8

// Instruction mnemonics. The zero value is invalid so that a zeroed Inst is
// never mistaken for a real instruction.
const (
	OpInvalid Op = iota

	// No operation and CPU control.
	OpNop
	OpSleep
	OpWdr
	OpBreak // reserved debug opcode; SenSmart reuses it as the KTRAP escape

	// Register-register ALU.
	OpAdd
	OpAdc
	OpSub
	OpSbc
	OpAnd
	OpOr
	OpEor
	OpMov
	OpCp
	OpCpc
	OpCpse
	OpMul
	OpMovw

	// Register-immediate ALU (Rd in r16..r31).
	OpSubi
	OpSbci
	OpAndi
	OpOri
	OpCpi
	OpLdi

	// Single-register ALU.
	OpCom
	OpNeg
	OpSwap
	OpInc
	OpDec
	OpAsr
	OpLsr
	OpRor

	// Word immediate (Rd in {r24,r26,r28,r30}).
	OpAdiw
	OpSbiw

	// Flag set/clear (SREG bit s).
	OpBset
	OpBclr

	// Control flow.
	OpRjmp
	OpRcall
	OpJmp   // 32-bit
	OpCall  // 32-bit
	OpIjmp  // jump to Z
	OpIcall // call Z
	OpRet
	OpReti
	OpBrbs // branch if SREG bit set
	OpBrbc // branch if SREG bit clear
	OpSbrc // skip if register bit clear
	OpSbrs // skip if register bit set
	OpSbic // skip if I/O bit clear
	OpSbis // skip if I/O bit set

	// I/O space.
	OpIn
	OpOut
	OpSbi
	OpCbi

	// Data-memory loads.
	OpLds // 32-bit
	OpLdX
	OpLdXInc
	OpLdXDec
	OpLdYInc
	OpLdYDec
	OpLddY // LDD Rd, Y+q (q may be 0, i.e. plain LD Rd, Y)
	OpLdZInc
	OpLdZDec
	OpLddZ // LDD Rd, Z+q
	OpPop

	// Data-memory stores.
	OpSts // 32-bit
	OpStX
	OpStXInc
	OpStXDec
	OpStYInc
	OpStYDec
	OpStdY
	OpStZInc
	OpStZDec
	OpStdZ
	OpPush

	// Program-memory loads.
	OpLpm     // implied R0 <- (Z)
	OpLpmZ    // LPM Rd, Z
	OpLpmZInc // LPM Rd, Z+

	// KTRAP is the SenSmart kernel-service escape: the BREAK opcode followed
	// by a 16-bit service id word. It never appears in application source;
	// only the rewriter emits it into naturalized images.
	OpKtrap

	opCount // sentinel
)

// SREG flag bit positions.
const (
	FlagC = 0 // carry
	FlagZ = 1 // zero
	FlagN = 2 // negative
	FlagV = 3 // two's-complement overflow
	FlagS = 4 // sign (N xor V)
	FlagH = 5 // half carry
	FlagT = 6 // bit copy storage
	FlagI = 7 // global interrupt enable
)

// Pointer register pairs.
const (
	RegX = 26 // X = r27:r26
	RegY = 28 // Y = r29:r28
	RegZ = 30 // Z = r31:r30
)

// I/O-space addresses (as used by IN/OUT, i.e. without the 0x20 data-space
// offset) of the registers the kernel and rewriter care about.
const (
	IOSpl  = 0x3D
	IOSph  = 0x3E
	IOSreg = 0x3F
)

// opInfo holds static metadata for one Op.
type opInfo struct {
	name   string
	words  uint8 // instruction size in 16-bit words
	cycles uint8 // base cycle count (branch/skip extras are dynamic)
}

var opTable = [opCount]opInfo{
	OpNop:     {"nop", 1, 1},
	OpSleep:   {"sleep", 1, 1},
	OpWdr:     {"wdr", 1, 1},
	OpBreak:   {"break", 1, 1},
	OpAdd:     {"add", 1, 1},
	OpAdc:     {"adc", 1, 1},
	OpSub:     {"sub", 1, 1},
	OpSbc:     {"sbc", 1, 1},
	OpAnd:     {"and", 1, 1},
	OpOr:      {"or", 1, 1},
	OpEor:     {"eor", 1, 1},
	OpMov:     {"mov", 1, 1},
	OpCp:      {"cp", 1, 1},
	OpCpc:     {"cpc", 1, 1},
	OpCpse:    {"cpse", 1, 1},
	OpMul:     {"mul", 1, 2},
	OpMovw:    {"movw", 1, 1},
	OpSubi:    {"subi", 1, 1},
	OpSbci:    {"sbci", 1, 1},
	OpAndi:    {"andi", 1, 1},
	OpOri:     {"ori", 1, 1},
	OpCpi:     {"cpi", 1, 1},
	OpLdi:     {"ldi", 1, 1},
	OpCom:     {"com", 1, 1},
	OpNeg:     {"neg", 1, 1},
	OpSwap:    {"swap", 1, 1},
	OpInc:     {"inc", 1, 1},
	OpDec:     {"dec", 1, 1},
	OpAsr:     {"asr", 1, 1},
	OpLsr:     {"lsr", 1, 1},
	OpRor:     {"ror", 1, 1},
	OpAdiw:    {"adiw", 1, 2},
	OpSbiw:    {"sbiw", 1, 2},
	OpBset:    {"bset", 1, 1},
	OpBclr:    {"bclr", 1, 1},
	OpRjmp:    {"rjmp", 1, 2},
	OpRcall:   {"rcall", 1, 3},
	OpJmp:     {"jmp", 2, 3},
	OpCall:    {"call", 2, 4},
	OpIjmp:    {"ijmp", 1, 2},
	OpIcall:   {"icall", 1, 3},
	OpRet:     {"ret", 1, 4},
	OpReti:    {"reti", 1, 4},
	OpBrbs:    {"brbs", 1, 1},
	OpBrbc:    {"brbc", 1, 1},
	OpSbrc:    {"sbrc", 1, 1},
	OpSbrs:    {"sbrs", 1, 1},
	OpSbic:    {"sbic", 1, 1},
	OpSbis:    {"sbis", 1, 1},
	OpIn:      {"in", 1, 1},
	OpOut:     {"out", 1, 1},
	OpSbi:     {"sbi", 1, 2},
	OpCbi:     {"cbi", 1, 2},
	OpLds:     {"lds", 2, 2},
	OpLdX:     {"ld", 1, 2},
	OpLdXInc:  {"ld", 1, 2},
	OpLdXDec:  {"ld", 1, 2},
	OpLdYInc:  {"ld", 1, 2},
	OpLdYDec:  {"ld", 1, 2},
	OpLddY:    {"ldd", 1, 2},
	OpLdZInc:  {"ld", 1, 2},
	OpLdZDec:  {"ld", 1, 2},
	OpLddZ:    {"ldd", 1, 2},
	OpPop:     {"pop", 1, 2},
	OpSts:     {"sts", 2, 2},
	OpStX:     {"st", 1, 2},
	OpStXInc:  {"st", 1, 2},
	OpStXDec:  {"st", 1, 2},
	OpStYInc:  {"st", 1, 2},
	OpStYDec:  {"st", 1, 2},
	OpStdY:    {"std", 1, 2},
	OpStZInc:  {"st", 1, 2},
	OpStZDec:  {"st", 1, 2},
	OpStdZ:    {"std", 1, 2},
	OpPush:    {"push", 1, 2},
	OpLpm:     {"lpm", 1, 3},
	OpLpmZ:    {"lpm", 1, 3},
	OpLpmZInc: {"lpm", 1, 3},
	OpKtrap:   {"ktrap", 2, 1},
}

// NumOps bounds dispatch tables indexed by Op (OpInvalid included).
const NumOps = int(opCount)

// Meta returns the instruction size in words and the base cycle count in a
// single table lookup — the predecoding interpreter's fetch-time accessor,
// which avoids paying two Valid-checked lookups per instruction.
func (op Op) Meta() (words, cycles int) {
	if !op.Valid() {
		return 0, 0
	}
	info := &opTable[op]
	return int(info.words), int(info.cycles)
}

// String returns the canonical lower-case mnemonic.
func (op Op) String() string {
	if op >= opCount || opTable[op].name == "" {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// Valid reports whether op names a real instruction.
func (op Op) Valid() bool {
	return op > OpInvalid && op < opCount && opTable[op].name != ""
}

// Words returns the instruction size in 16-bit words (1 or 2).
func (op Op) Words() int {
	if !op.Valid() {
		return 0
	}
	return int(opTable[op].words)
}

// BaseCycles returns the minimum cycle cost of the instruction on an
// ATmega128. Branch-taken and skip penalties are added at execution time.
func (op Op) BaseCycles() int {
	if !op.Valid() {
		return 0
	}
	return int(opTable[op].cycles)
}

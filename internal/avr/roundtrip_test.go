package avr_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/avr"
	"repro/internal/avr/asm"
	"repro/internal/image"
	"repro/internal/progs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden disassembly listings")

// roundTripPrograms is the corpus: the seven kernel benchmarks plus one
// fixed instance of each generated workload, so every encoder path the repo
// exercises appears in a checked-in listing.
func roundTripPrograms(t *testing.T) []*image.Program {
	t.Helper()
	var out []*image.Program
	for _, kb := range progs.KernelBenchmarks() {
		out = append(out, kb.Program)
	}
	out = append(out,
		progs.PeriodicTask(progs.PeriodicParams{Instructions: 10_000, Activations: 10}),
		progs.PeriodicTaskNative(progs.PeriodicParams{Instructions: 10_000, Activations: 10}),
		progs.MustTreeSearch(progs.TreeSearchParams{Trees: 2, NodesPerTree: 8}),
	)
	alloc, err := progs.AllocDemo(8)
	if err != nil {
		t.Fatalf("alloc demo: %v", err)
	}
	return append(out, alloc)
}

// reassemble turns a DisasmWords listing back into assembler input by
// stripping the address prefixes; everything after them — including ".dw"
// data fallback lines — is already assembler syntax.
func reassemble(t *testing.T, name, listing string) *image.Program {
	t.Helper()
	var b strings.Builder
	b.WriteString(".text\n")
	for _, line := range strings.Split(strings.TrimRight(listing, "\n"), "\n") {
		_, inst, ok := strings.Cut(line, ": ")
		if !ok {
			t.Fatalf("%s: malformed listing line %q", name, line)
		}
		b.WriteString(inst)
		b.WriteByte('\n')
	}
	prog, err := asm.Assemble(name+"-rt", b.String())
	if err != nil {
		t.Fatalf("%s: reassemble: %v\nsource:\n%s", name, err, b.String())
	}
	return prog
}

// TestAssembleDisassembleRoundTrip asserts, for every program in
// internal/progs, that the disassembly matches its checked-in golden
// listing (regenerate with -update) and that reassembling that listing
// reproduces the image byte for byte. Data words that happen to decode as
// instructions survive because encoding is the exact inverse of decoding;
// words no instruction claims come back via the ".dw" fallback.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	for _, prog := range roundTripPrograms(t) {
		t.Run(prog.Name, func(t *testing.T) {
			listing := avr.DisasmWords(prog.Words)
			golden := filepath.Join("testdata", "roundtrip", prog.Name+".dis")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(listing), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden listing (run with -update): %v", err)
			}
			if listing != string(want) {
				t.Fatalf("disassembly drifted from %s:\n%s", golden, diffFirstLine(string(want), listing))
			}

			back := reassemble(t, prog.Name, listing)
			if len(back.Words) != len(prog.Words) {
				t.Fatalf("reassembled %d words, want %d", len(back.Words), len(prog.Words))
			}
			for i := range prog.Words {
				if back.Words[i] != prog.Words[i] {
					t.Fatalf("word %#x: reassembled %#04x, want %#04x (%s)",
						i, back.Words[i], prog.Words[i], avr.DisasmWords(prog.Words[i:i+1]))
				}
			}
		})
	}
}

// diffFirstLine points a human at the first differing listing line.
func diffFirstLine(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("listings differ in length: golden %d lines, got %d", len(w), len(g))
}

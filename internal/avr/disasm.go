package avr

import (
	"fmt"
	"strings"
)

// branchAliases maps (op, SREG bit) to the conventional conditional-branch
// mnemonic, e.g. BRBS with bit Z prints as "breq".
var branchAliases = map[[2]uint8]string{
	{uint8(OpBrbs), FlagC}: "brcs",
	{uint8(OpBrbs), FlagZ}: "breq",
	{uint8(OpBrbs), FlagN}: "brmi",
	{uint8(OpBrbs), FlagV}: "brvs",
	{uint8(OpBrbs), FlagS}: "brlt",
	{uint8(OpBrbs), FlagH}: "brhs",
	{uint8(OpBrbs), FlagT}: "brts",
	{uint8(OpBrbs), FlagI}: "brie",
	{uint8(OpBrbc), FlagC}: "brcc",
	{uint8(OpBrbc), FlagZ}: "brne",
	{uint8(OpBrbc), FlagN}: "brpl",
	{uint8(OpBrbc), FlagV}: "brvc",
	{uint8(OpBrbc), FlagS}: "brge",
	{uint8(OpBrbc), FlagH}: "brhc",
	{uint8(OpBrbc), FlagT}: "brtc",
	{uint8(OpBrbc), FlagI}: "brid",
}

// Disasm renders in as assembly text in the syntax accepted by the
// internal/avr/asm assembler.
func Disasm(in Inst) string {
	r := func(n uint8) string { return fmt.Sprintf("r%d", n) }
	switch in.Op {
	case OpNop, OpSleep, OpWdr, OpBreak, OpIjmp, OpIcall, OpRet, OpReti:
		return in.Op.String()
	case OpLpm:
		return "lpm"
	case OpLpmZ:
		return fmt.Sprintf("lpm %s, Z", r(in.Dst))
	case OpLpmZInc:
		return fmt.Sprintf("lpm %s, Z+", r(in.Dst))
	case OpAdd, OpAdc, OpSub, OpSbc, OpAnd, OpOr, OpEor, OpMov, OpCp, OpCpc,
		OpCpse, OpMul, OpMovw:
		return fmt.Sprintf("%s %s, %s", in.Op, r(in.Dst), r(in.Src))
	case OpSubi, OpSbci, OpAndi, OpOri, OpCpi, OpLdi:
		return fmt.Sprintf("%s %s, %d", in.Op, r(in.Dst), in.Imm)
	case OpCom, OpNeg, OpSwap, OpInc, OpDec, OpAsr, OpLsr, OpRor, OpPush,
		OpPop:
		return fmt.Sprintf("%s %s", in.Op, r(in.Dst))
	case OpAdiw, OpSbiw:
		return fmt.Sprintf("%s %s, %d", in.Op, r(in.Dst), in.Imm)
	case OpBset, OpBclr:
		return fmt.Sprintf("%s %d", in.Op, in.Dst)
	case OpRjmp, OpRcall:
		// GNU as convention: "." is the byte address of this instruction, so
		// "rjmp ." (offset +0) encodes displacement -1.
		return fmt.Sprintf("%s .%+d", in.Op, (in.Imm+1)*2)
	case OpJmp, OpCall:
		return fmt.Sprintf("%s %#x", in.Op, in.Imm)
	case OpBrbs, OpBrbc:
		if alias, ok := branchAliases[[2]uint8{uint8(in.Op), in.Src}]; ok {
			return fmt.Sprintf("%s .%+d", alias, (in.Imm+1)*2)
		}
		return fmt.Sprintf("%s %d, .%+d", in.Op, in.Src, (in.Imm+1)*2)
	case OpSbrc, OpSbrs:
		return fmt.Sprintf("%s %s, %d", in.Op, r(in.Dst), in.Imm)
	case OpSbi, OpCbi, OpSbic, OpSbis:
		return fmt.Sprintf("%s %#x, %d", in.Op, in.Dst, in.Imm)
	case OpIn:
		return fmt.Sprintf("in %s, %#x", r(in.Dst), in.Imm)
	case OpOut:
		return fmt.Sprintf("out %#x, %s", in.Imm, r(in.Dst))
	case OpLds:
		return fmt.Sprintf("lds %s, %#x", r(in.Dst), in.Imm)
	case OpSts:
		return fmt.Sprintf("sts %#x, %s", in.Imm, r(in.Dst))
	case OpLdX:
		return fmt.Sprintf("ld %s, X", r(in.Dst))
	case OpLdXInc:
		return fmt.Sprintf("ld %s, X+", r(in.Dst))
	case OpLdXDec:
		return fmt.Sprintf("ld %s, -X", r(in.Dst))
	case OpLdYInc:
		return fmt.Sprintf("ld %s, Y+", r(in.Dst))
	case OpLdYDec:
		return fmt.Sprintf("ld %s, -Y", r(in.Dst))
	case OpLdZInc:
		return fmt.Sprintf("ld %s, Z+", r(in.Dst))
	case OpLdZDec:
		return fmt.Sprintf("ld %s, -Z", r(in.Dst))
	case OpLddY:
		return fmt.Sprintf("ldd %s, Y+%d", r(in.Dst), in.Imm)
	case OpLddZ:
		return fmt.Sprintf("ldd %s, Z+%d", r(in.Dst), in.Imm)
	case OpStX:
		return fmt.Sprintf("st X, %s", r(in.Dst))
	case OpStXInc:
		return fmt.Sprintf("st X+, %s", r(in.Dst))
	case OpStXDec:
		return fmt.Sprintf("st -X, %s", r(in.Dst))
	case OpStYInc:
		return fmt.Sprintf("st Y+, %s", r(in.Dst))
	case OpStYDec:
		return fmt.Sprintf("st -Y, %s", r(in.Dst))
	case OpStZInc:
		return fmt.Sprintf("st Z+, %s", r(in.Dst))
	case OpStZDec:
		return fmt.Sprintf("st -Z, %s", r(in.Dst))
	case OpStdY:
		return fmt.Sprintf("std Y+%d, %s", in.Imm, r(in.Dst))
	case OpStdZ:
		return fmt.Sprintf("std Z+%d, %s", in.Imm, r(in.Dst))
	case OpKtrap:
		return fmt.Sprintf("ktrap %d", in.Imm)
	}
	return fmt.Sprintf("?%v", in.Op)
}

// DisasmWords disassembles a whole word slice, one instruction per line,
// prefixing each line with its word address. Undecodable words are rendered
// as ".dw 0xNNNN" so the output is always complete.
func DisasmWords(words []uint16) string {
	var b strings.Builder
	for pc := 0; pc < len(words); {
		in, err := Decode(words[pc:])
		if err != nil {
			fmt.Fprintf(&b, "%#06x: .dw %#04x\n", pc, words[pc])
			pc++
			continue
		}
		fmt.Fprintf(&b, "%#06x: %s\n", pc, Disasm(in))
		pc += in.Words()
	}
	return b.String()
}

package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// exprEnv resolves symbol references while evaluating an expression.
type exprEnv struct {
	lookup func(name string) (int64, bool)
	dot    int64 // byte address of the current instruction ("." in GNU as)
}

// evalExpr evaluates a constant expression with the grammar
//
//	expr   := term { (+|-) term }
//	term   := factor { (*|/) factor }
//	factor := number | 'c' | symbol | func '(' expr ')' | '(' expr ')' | -factor | .
//
// supporting lo8()/hi8() byte extraction and pmbyte() word→byte address
// conversion for program-memory tables.
func evalExpr(s string, env exprEnv) (int64, error) {
	p := &exprParser{src: s, env: env}
	v, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("asm: trailing junk in expression %q", s)
	}
	return v, nil
}

type exprParser struct {
	src string
	pos int
	env exprEnv
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *exprParser) parseExpr() (int64, error) {
	v, err := p.parseTerm()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '+':
			p.pos++
			t, err := p.parseTerm()
			if err != nil {
				return 0, err
			}
			v += t
		case '-':
			p.pos++
			t, err := p.parseTerm()
			if err != nil {
				return 0, err
			}
			v -= t
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseTerm() (int64, error) {
	v, err := p.parseFactor()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '*':
			p.pos++
			f, err := p.parseFactor()
			if err != nil {
				return 0, err
			}
			v *= f
		case '/':
			p.pos++
			f, err := p.parseFactor()
			if err != nil {
				return 0, err
			}
			if f == 0 {
				return 0, fmt.Errorf("asm: division by zero in %q", p.src)
			}
			v /= f
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseFactor() (int64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, fmt.Errorf("asm: unexpected end of expression %q", p.src)
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		v, err := p.parseExpr()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return 0, fmt.Errorf("asm: missing ')' in %q", p.src)
		}
		p.pos++
		return v, nil
	case c == '-':
		p.pos++
		v, err := p.parseFactor()
		return -v, err
	case c == '\'':
		return p.parseChar()
	case c == '.' && !isIdentByte(p.byteAt(p.pos+1)):
		p.pos++
		return p.env.dot, nil
	case c >= '0' && c <= '9':
		return p.parseNumber()
	case isIdentStart(c):
		return p.parseIdent()
	}
	return 0, fmt.Errorf("asm: unexpected %q in expression %q", string(c), p.src)
}

func (p *exprParser) byteAt(i int) byte {
	if i < len(p.src) {
		return p.src[i]
	}
	return 0
}

func (p *exprParser) parseChar() (int64, error) {
	// 'x' or '\n' style character literal.
	rest := p.src[p.pos:]
	if len(rest) >= 3 && rest[1] != '\\' && rest[2] == '\'' {
		p.pos += 3
		return int64(rest[1]), nil
	}
	if len(rest) >= 4 && rest[1] == '\\' && rest[3] == '\'' {
		p.pos += 4
		switch rest[2] {
		case 'n':
			return '\n', nil
		case 'r':
			return '\r', nil
		case 't':
			return '\t', nil
		case '0':
			return 0, nil
		case '\\':
			return '\\', nil
		case '\'':
			return '\'', nil
		}
	}
	return 0, fmt.Errorf("asm: bad character literal in %q", p.src)
}

func (p *exprParser) parseNumber() (int64, error) {
	start := p.pos
	for p.pos < len(p.src) && (isIdentByte(p.src[p.pos])) {
		p.pos++
	}
	text := p.src[start:p.pos]
	v, err := strconv.ParseInt(text, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("asm: bad number %q", text)
	}
	return v, nil
}

func (p *exprParser) parseIdent() (int64, error) {
	start := p.pos
	for p.pos < len(p.src) && isIdentByte(p.src[p.pos]) {
		p.pos++
	}
	name := p.src[start:p.pos]
	p.skipSpace()
	if p.peek() == '(' {
		p.pos++
		arg, err := p.parseExpr()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return 0, fmt.Errorf("asm: missing ')' after %s(", name)
		}
		p.pos++
		switch strings.ToLower(name) {
		case "lo8":
			return arg & 0xFF, nil
		case "hi8":
			return arg >> 8 & 0xFF, nil
		case "pmbyte":
			// Converts a code word address to the byte address LPM expects.
			return arg * 2, nil
		}
		return 0, fmt.Errorf("asm: unknown function %q", name)
	}
	v, ok := p.env.lookup(name)
	if !ok {
		return 0, fmt.Errorf("asm: undefined symbol %q", name)
	}
	return v, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentByte(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

package asm

import "testing"

func evalIn(t *testing.T, expr string, lookup map[string]int64, dot int64) int64 {
	t.Helper()
	v, err := evalExpr(expr, exprEnv{
		dot: dot,
		lookup: func(name string) (int64, bool) {
			x, ok := lookup[name]
			return x, ok
		},
	})
	if err != nil {
		t.Fatalf("evalExpr(%q): %v", expr, err)
	}
	return v
}

func TestExprArithmetic(t *testing.T) {
	tests := []struct {
		give string
		want int64
	}{
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"10-4-3", 3},
		{"100/10/2", 5},
		{"-5+8", 3},
		{"0x10+0b101", 21},
		{"'A'", 65},
		{"'\\n'", 10},
		{"lo8(0x1234)", 0x34},
		{"hi8(0x1234)", 0x12},
		{"pmbyte(3)", 6},
		{"lo8(-(0x0102))", 0xFE},
		{"2*(3+4)-1", 13},
	}
	for _, tt := range tests {
		if got := evalIn(t, tt.give, nil, 0); got != tt.want {
			t.Errorf("%q = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestExprSymbolsAndDot(t *testing.T) {
	syms := map[string]int64{"base": 0x100, ".local": 7}
	if got := evalIn(t, "base+4", syms, 0); got != 0x104 {
		t.Errorf("base+4 = %d", got)
	}
	if got := evalIn(t, ".local*2", syms, 0); got != 14 {
		t.Errorf(".local*2 = %d", got)
	}
	if got := evalIn(t, ". + 6", syms, 100); got != 106 {
		t.Errorf(". + 6 = %d", got)
	}
}

func TestExprErrors(t *testing.T) {
	bads := []string{
		"", "1+", "(1", "nosuchsym", "frob(1)", "1/0", "lo8(1", "'ab'", "1 2",
	}
	for _, e := range bads {
		if _, err := evalExpr(e, exprEnv{lookup: func(string) (int64, bool) { return 0, false }}); err == nil {
			t.Errorf("%q: expected error", e)
		}
	}
}

func TestSplitOperandsRespectsNesting(t *testing.T) {
	got := splitOperands("r24, lo8(a+1), 'x', hi8((b))")
	want := []string{"r24", "lo8(a+1)", "'x'", "hi8((b))"}
	if len(got) != len(want) {
		t.Fatalf("split = %q", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("split[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestParseRegAliases(t *testing.T) {
	tests := []struct {
		give string
		want uint8
		ok   bool
	}{
		{"r0", 0, true}, {"r31", 31, true}, {"R15", 15, true},
		{"XL", 26, true}, {"ZH", 31, true}, {"YL", 28, true},
		{"r32", 0, false}, {"rx", 0, false}, {"x1", 0, false},
	}
	for _, tt := range tests {
		got, ok := parseReg(tt.give)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("parseReg(%q) = %d,%v want %d,%v", tt.give, got, ok, tt.want, tt.ok)
		}
	}
}

// Package asm implements a two-pass assembler for the AVR subset in
// internal/avr. It plays the role of the compiler in Figure 1 of the paper:
// it turns application source into a binary program plus the symbol list
// (code labels, data objects, heap usage) that the base-station rewriter
// consumes.
//
// Syntax (one statement per line, ';' or '//' starts a comment):
//
//	.text                ; switch to the code section (default)
//	.data                ; switch to the data-memory section
//	.equ NAME, expr      ; define a constant
//	.entry label         ; set the entry point (default: "main", else 0)
//	.stack N             ; request an initial stack reserve of N bytes
//	.org ADDR            ; advance the location counter (words in .text)
//	.dw e, e, ...        ; emit 16-bit words (.text: program-memory tables)
//	.db e, e, ...        ; emit bytes (.data: initialised heap bytes)
//	.space N             ; reserve N zeroed bytes (.data)
//	label:               ; define a label at the current location
//	mnemonic operands    ; one instruction
//
// Data labels are data-memory byte addresses starting at the logical heap
// base 0x0100; code labels are program-memory word addresses starting at 0.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/avr"
	"repro/internal/image"
	"repro/internal/ioregs"
)

// HeapBase is the first data-memory byte address of the application heap in
// the task's logical address space (right above the I/O area, Figure 2).
const HeapBase = 0x0100

// Error is a source-position-annotated assembly error.
type Error struct {
	File string
	Line int
	Err  error
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %v", e.File, e.Line, e.Err) }
func (e *Error) Unwrap() error { return e.Err }

// Assemble assembles src into a Program named name.
func Assemble(name, src string) (*image.Program, error) {
	a := &assembler{
		name:   name,
		consts: make(map[string]int64, len(ioregs.Names)+2),
		labels: make(map[string]labelDef),
	}
	// Predefine the MCU register map plus the memory-layout landmarks every
	// program needs, so sources read like regular AVR assembly.
	for n, v := range ioregs.Names {
		a.consts[n] = v
	}
	a.consts["RAMEND"] = 0x10FF
	a.consts["HEAPBASE"] = HeapBase
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	if err := a.pass2(); err != nil {
		return nil, err
	}
	return a.finish()
}

// MustAssemble is Assemble for statically known-good sources (the built-in
// benchmark programs); it panics on error.
func MustAssemble(name, src string) *image.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type section uint8

const (
	secText section = iota
	secData
)

type labelDef struct {
	kind image.SymKind
	addr uint32
}

// stmt is one pass-1 statement awaiting encoding in pass 2.
type stmt struct {
	line     int
	section  section
	addr     uint32 // word address (.text) or byte address (.data)
	mnemonic string
	operands []string
	dirData  []string // .dw/.db expressions
	isWords  bool     // .dw vs .db
}

type assembler struct {
	name   string
	consts map[string]int64
	labels map[string]labelDef

	stmts     []stmt
	textPos   uint32 // word location counter
	dataPos   uint32 // byte location counter relative to HeapBase
	dataInit  []byte
	dataDirty bool // true once .db wrote initialised data
	entryName string
	stackRes  int64
	section   section
	textData  []image.Range

	words []uint16
}

// markTextData records [start, end) as constant data inside .text, merging
// with an adjacent previous range.
func (a *assembler) markTextData(start, end uint32) {
	if n := len(a.textData); n > 0 && a.textData[n-1].End == start {
		a.textData[n-1].End = end
		return
	}
	a.textData = append(a.textData, image.Range{Start: start, End: end})
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &Error{File: a.name, Line: line, Err: fmt.Errorf(format, args...)}
}

// pass1 parses every line, sizes instructions, and defines labels.
func (a *assembler) pass1(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		text := stripComment(raw)
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		// Peel off any leading labels.
		for {
			colon := strings.Index(text, ":")
			if colon < 0 || !isLabelName(text[:colon]) {
				break
			}
			if err := a.defineLabel(line, text[:colon]); err != nil {
				return err
			}
			text = strings.TrimSpace(text[colon+1:])
		}
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ".") {
			if err := a.directive(line, text); err != nil {
				return err
			}
			continue
		}
		mn, rest := splitMnemonic(text)
		ops := splitOperands(rest)
		size, err := instWords(mn, ops)
		if err != nil {
			return a.errf(line, "%v", err)
		}
		a.stmts = append(a.stmts, stmt{
			line: line, section: secText, addr: a.textPos,
			mnemonic: mn, operands: ops,
		})
		a.textPos += uint32(size)
	}
	return nil
}

func (a *assembler) defineLabel(line int, name string) error {
	if _, dup := a.labels[name]; dup {
		return a.errf(line, "duplicate label %q", name)
	}
	if _, dup := a.consts[name]; dup {
		return a.errf(line, "label %q collides with .equ constant", name)
	}
	if a.section == secText {
		a.labels[name] = labelDef{kind: image.SymCode, addr: a.textPos}
	} else {
		a.labels[name] = labelDef{kind: image.SymData, addr: HeapBase + a.dataPos}
	}
	return nil
}

func (a *assembler) directive(line int, text string) error {
	mn, rest := splitMnemonic(text)
	switch mn {
	case ".text":
		a.section = secText
	case ".data":
		a.section = secData
	case ".global", ".globl", ".section":
		// Accepted and ignored for source compatibility.
	case ".equ", ".set":
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return a.errf(line, ".equ needs NAME, value")
		}
		name := strings.TrimSpace(parts[0])
		if !isLabelName(name) {
			return a.errf(line, "bad constant name %q", name)
		}
		v, err := a.eval(parts[1], 0)
		if err != nil {
			return a.errf(line, "%v", err)
		}
		a.consts[name] = v
	case ".entry":
		a.entryName = strings.TrimSpace(rest)
	case ".stack":
		v, err := a.eval(rest, 0)
		if err != nil {
			return a.errf(line, "%v", err)
		}
		a.stackRes = v
	case ".org":
		v, err := a.eval(rest, 0)
		if err != nil {
			return a.errf(line, "%v", err)
		}
		if a.section == secText {
			if uint32(v) < a.textPos {
				return a.errf(line, ".org %#x before current position %#x", v, a.textPos)
			}
			// Pad with NOPs via a synthetic .dw statement in pass 2.
			for a.textPos < uint32(v) {
				a.stmts = append(a.stmts, stmt{
					line: line, section: secText, addr: a.textPos,
					dirData: []string{"0"}, isWords: true,
				})
				a.textPos++
			}
		} else {
			if v < int64(HeapBase) || uint32(v-HeapBase) < a.dataPos {
				return a.errf(line, ".org %#x invalid in .data", v)
			}
			a.dataPos = uint32(v - HeapBase)
		}
	case ".dw":
		exprs := splitOperands(rest)
		if len(exprs) == 0 {
			return a.errf(line, ".dw needs at least one value")
		}
		a.stmts = append(a.stmts, stmt{
			line: line, section: a.section,
			addr:    a.pos(),
			dirData: exprs, isWords: true,
		})
		if a.section == secText {
			a.markTextData(a.textPos, a.textPos+uint32(len(exprs)))
			a.textPos += uint32(len(exprs))
		} else {
			a.dataPos += uint32(2 * len(exprs))
		}
	case ".db", ".byte":
		exprs := splitOperands(rest)
		if len(exprs) == 0 {
			return a.errf(line, ".db needs at least one value")
		}
		if a.section == secText && len(exprs)%2 != 0 {
			return a.errf(line, ".db in .text needs an even byte count")
		}
		a.stmts = append(a.stmts, stmt{
			line: line, section: a.section,
			addr:    a.pos(),
			dirData: exprs,
		})
		if a.section == secText {
			a.markTextData(a.textPos, a.textPos+uint32(len(exprs)/2))
			a.textPos += uint32(len(exprs) / 2)
		} else {
			a.dataPos += uint32(len(exprs))
		}
	case ".space", ".skip":
		v, err := a.eval(rest, 0)
		if err != nil {
			return a.errf(line, "%v", err)
		}
		if v < 0 {
			return a.errf(line, ".space needs a non-negative size")
		}
		if a.section == secText {
			return a.errf(line, ".space only valid in .data")
		}
		a.dataPos += uint32(v)
	default:
		return a.errf(line, "unknown directive %q", mn)
	}
	return nil
}

func (a *assembler) pos() uint32 {
	if a.section == secText {
		return a.textPos
	}
	return a.dataPos
}

// pass2 encodes every statement now that all labels are known.
func (a *assembler) pass2() error {
	a.words = make([]uint16, 0, a.textPos)
	for _, st := range a.stmts {
		if st.dirData != nil {
			if err := a.encodeData(st); err != nil {
				return err
			}
			continue
		}
		in, err := a.encodeInst(st)
		if err != nil {
			return err
		}
		w, err := avr.Encode(in)
		if err != nil {
			return a.errf(st.line, "%v", err)
		}
		if uint32(len(a.words)) != st.addr {
			return a.errf(st.line, "internal: location counter drift (%d != %d)", len(a.words), st.addr)
		}
		a.words = append(a.words, w...)
	}
	return nil
}

func (a *assembler) encodeData(st stmt) error {
	vals := make([]int64, len(st.dirData))
	for i, e := range st.dirData {
		v, err := a.eval(e, int64(st.addr)*2)
		if err != nil {
			return a.errf(st.line, "%v", err)
		}
		vals[i] = v
	}
	if st.section == secText {
		if st.isWords {
			for _, v := range vals {
				a.words = append(a.words, uint16(v))
			}
		} else {
			for i := 0; i < len(vals); i += 2 {
				a.words = append(a.words, uint16(vals[i]&0xFF)|uint16(vals[i+1]&0xFF)<<8)
			}
		}
		return nil
	}
	// .data: record initialised bytes at the statement's offset.
	off := int(st.addr)
	var bytes []byte
	for _, v := range vals {
		if st.isWords {
			bytes = append(bytes, byte(v), byte(v>>8))
		} else {
			bytes = append(bytes, byte(v))
		}
	}
	need := off + len(bytes)
	for len(a.dataInit) < need {
		a.dataInit = append(a.dataInit, 0)
	}
	copy(a.dataInit[off:], bytes)
	return nil
}

func (a *assembler) eval(expr string, dotByteAddr int64) (int64, error) {
	return evalExpr(strings.TrimSpace(expr), exprEnv{
		dot: dotByteAddr,
		lookup: func(name string) (int64, bool) {
			if v, ok := a.consts[name]; ok {
				return v, true
			}
			if l, ok := a.labels[name]; ok {
				return int64(l.addr), true
			}
			return 0, false
		},
	})
}

func (a *assembler) finish() (*image.Program, error) {
	p := &image.Program{
		Name:     a.name,
		Words:    a.words,
		HeapBase: HeapBase,
		HeapSize: uint16(a.dataPos),
		DataInit: a.dataInit,
		TextData: a.textData,
	}
	if a.stackRes > 0 {
		p.StackReserve = uint16(a.stackRes)
	}
	entry := a.entryName
	if entry == "" {
		entry = "main"
	}
	if l, ok := a.labels[entry]; ok && l.kind == image.SymCode {
		p.Entry = l.addr
	} else if a.entryName != "" {
		return nil, fmt.Errorf("asm: %s: entry label %q not defined", a.name, a.entryName)
	}
	for name, l := range a.labels {
		p.Symbols = append(p.Symbols, image.Symbol{Name: name, Kind: l.kind, Addr: l.addr})
	}
	for name, v := range a.consts {
		p.Symbols = append(p.Symbols, image.Symbol{Name: name, Kind: image.SymConst, Addr: uint32(v)})
	}
	p.SortSymbols()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func stripComment(s string) string {
	inChar := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\'':
			inChar = !inChar
		case inChar:
		case s[i] == ';':
			return s[:i]
		case s[i] == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

func splitMnemonic(s string) (mnemonic, rest string) {
	s = strings.TrimSpace(s)
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return strings.ToLower(s[:i]), strings.TrimSpace(s[i:])
		}
	}
	return strings.ToLower(s), ""
}

// splitOperands splits on commas that are not nested in parentheses or
// character literals.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var (
		out   []string
		depth int
		start int
	)
	inChar := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			inChar = !inChar
		case '(':
			if !inChar {
				depth++
			}
		case ')':
			if !inChar {
				depth--
			}
		case ',':
			if depth == 0 && !inChar {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func isLabelName(s string) bool {
	if s == "" || s == "." {
		return false
	}
	if !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentByte(s[i]) {
			return false
		}
	}
	// Reject bare register names as labels to catch typos early.
	if _, ok := parseReg(s); ok {
		return false
	}
	return true
}

func parseReg(s string) (uint8, bool) {
	switch strings.ToUpper(s) {
	case "XL":
		return 26, true
	case "XH":
		return 27, true
	case "YL":
		return 28, true
	case "YH":
		return 29, true
	case "ZL":
		return 30, true
	case "ZH":
		return 31, true
	}
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, false
	}
	return uint8(n), true
}

package asm

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/avr"
	"repro/internal/image"
)

func TestAssembleBasicProgram(t *testing.T) {
	p, err := Assemble("basic", `
; simple counting loop
.equ COUNT, 10
main:
    ldi r16, COUNT
loop:
    dec r16
    brne loop
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) != 4 {
		t.Fatalf("got %d words, want 4:\n%s", len(p.Words), avr.DisasmWords(p.Words))
	}
	in, err := avr.Decode(p.Words)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != avr.OpLdi || in.Dst != 16 || in.Imm != 10 {
		t.Fatalf("first inst = %+v, want ldi r16,10", in)
	}
	// brne loop: loop is at word 1, brne is at word 2 -> disp = 1-(2+1) = -2.
	br, err := avr.Decode(p.Words[2:])
	if err != nil {
		t.Fatal(err)
	}
	if br.Op != avr.OpBrbc || br.Src != avr.FlagZ || br.Imm != -2 {
		t.Fatalf("branch = %+v, want brne disp -2", br)
	}
	if p.Entry != 0 {
		t.Errorf("entry = %d, want 0 (main)", p.Entry)
	}
	if sym, ok := p.Lookup("loop"); !ok || sym.Addr != 1 || sym.Kind != image.SymCode {
		t.Errorf("loop symbol = %+v, %v", sym, ok)
	}
}

func TestAssembleDataSection(t *testing.T) {
	p, err := Assemble("data", `
.data
counter: .space 2
table:   .db 1, 2, 3, 4
msg:     .db 'h', 'i', 0
.text
main:
    lds r24, counter
    sts counter, r24
    ldi r30, lo8(table)
    ldi r31, hi8(table)
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.HeapSize != 9 {
		t.Errorf("heap size = %d, want 9", p.HeapSize)
	}
	counter, ok := p.Lookup("counter")
	if !ok || counter.Addr != HeapBase || counter.Kind != image.SymData {
		t.Errorf("counter = %+v, %v", counter, ok)
	}
	table, _ := p.Lookup("table")
	if table.Addr != HeapBase+2 {
		t.Errorf("table addr = %#x, want %#x", table.Addr, HeapBase+2)
	}
	// DataInit: 2 zero bytes for .space then 1,2,3,4,'h','i',0.
	wantInit := []byte{0, 0, 1, 2, 3, 4, 'h', 'i', 0}
	if len(p.DataInit) != len(wantInit) {
		t.Fatalf("data init = %v, want %v", p.DataInit, wantInit)
	}
	for i := range wantInit {
		if p.DataInit[i] != wantInit[i] {
			t.Fatalf("data init = %v, want %v", p.DataInit, wantInit)
		}
	}
	// lds r24, counter encodes the absolute heap address.
	in, err := avr.Decode(p.Words)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != avr.OpLds || in.Imm != int32(HeapBase) {
		t.Errorf("lds = %+v, want addr %#x", in, HeapBase)
	}
}

func TestAssemblePointerModes(t *testing.T) {
	p, err := Assemble("ptr", `
main:
    ld r0, X
    ld r1, X+
    ld r2, -X
    ld r3, Y
    ldd r4, Y+5
    ld r5, Z+
    st X+, r6
    std Z+63, r7
    st -Y, r8
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []avr.Op{
		avr.OpLdX, avr.OpLdXInc, avr.OpLdXDec, avr.OpLddY, avr.OpLddY,
		avr.OpLdZInc, avr.OpStXInc, avr.OpStdZ, avr.OpStYDec, avr.OpRet,
	}
	pc := 0
	for i, wantOp := range wantOps {
		in, err := avr.Decode(p.Words[pc:])
		if err != nil {
			t.Fatal(err)
		}
		if in.Op != wantOp {
			t.Fatalf("inst %d = %v, want %v", i, in.Op, wantOp)
		}
		if wantOp == avr.OpStdZ && in.Imm != 63 {
			t.Errorf("std displacement = %d, want 63", in.Imm)
		}
		pc += in.Words()
	}
}

func TestAssembleCallsAndJumps(t *testing.T) {
	p, err := Assemble("calls", `
main:
    call helper
    jmp done
helper:
    ret
done:
    rjmp done
`)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := avr.Decode(p.Words)
	if in.Op != avr.OpCall || in.Imm != 4 {
		t.Fatalf("call = %+v, want target 4", in)
	}
	jmp, _ := avr.Decode(p.Words[2:])
	if jmp.Op != avr.OpJmp || jmp.Imm != 5 {
		t.Fatalf("jmp = %+v, want target 5", jmp)
	}
	rj, _ := avr.Decode(p.Words[5:])
	if rj.Op != avr.OpRjmp || rj.Imm != -1 {
		t.Fatalf("rjmp = %+v, want disp -1 (self loop)", rj)
	}
}

func TestAssembleDotRelative(t *testing.T) {
	p, err := Assemble("dot", `
main:
    rjmp .
    rjmp .-2
`)
	if err != nil {
		t.Fatal(err)
	}
	in0, _ := avr.Decode(p.Words)
	if in0.Imm != -1 {
		t.Errorf("rjmp . disp = %d, want -1", in0.Imm)
	}
	in1, _ := avr.Decode(p.Words[1:])
	if in1.Imm != -2 {
		t.Errorf("rjmp .-2 disp = %d, want -2", in1.Imm)
	}
}

func TestAssemblePredefinedRegisters(t *testing.T) {
	p, err := Assemble("io", `
main:
    in r28, SPL
    in r29, SPH
    out SREG, r0
    sbi PORTB, 1
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	in0, _ := avr.Decode(p.Words)
	if !in0.ReadsSP() {
		t.Errorf("in r28,SPL should read SP: %+v", in0)
	}
}

func TestAssembleStackAndEntryDirectives(t *testing.T) {
	p, err := Assemble("dir", `
.stack 96
.entry start
boot:
    nop
start:
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.StackReserve != 96 {
		t.Errorf("stack reserve = %d, want 96", p.StackReserve)
	}
	if p.Entry != 1 {
		t.Errorf("entry = %d, want 1", p.Entry)
	}
}

func TestAssembleAliases(t *testing.T) {
	p, err := Assemble("alias", `
main:
    clr r10
    lsl r11
    rol r12
    tst r13
    ser r16
    sei
    cli
    sec
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	wants := []avr.Inst{
		{Op: avr.OpEor, Dst: 10, Src: 10},
		{Op: avr.OpAdd, Dst: 11, Src: 11},
		{Op: avr.OpAdc, Dst: 12, Src: 12},
		{Op: avr.OpAnd, Dst: 13, Src: 13},
		{Op: avr.OpLdi, Dst: 16, Imm: 0xFF},
		{Op: avr.OpBset, Dst: avr.FlagI},
		{Op: avr.OpBclr, Dst: avr.FlagI},
		{Op: avr.OpBset, Dst: avr.FlagC},
		{Op: avr.OpRet},
	}
	pc := 0
	for i, want := range wants {
		got, err := avr.Decode(p.Words[pc:])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("inst %d = %+v, want %+v", i, got, want)
		}
		pc += got.Words()
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "main:\n frob r1\n"},
		{"bad register", "main:\n ldi r40, 1\n ret\n"},
		{"ldi low register", "main:\n ldi r3, 1\n ret\n"},
		{"undefined symbol", "main:\n rjmp nowhere\n"},
		{"duplicate label", "a:\na:\n ret\n"},
		{"branch out of range", "main:\n breq far\n.org 200\nfar: ret\n"},
		{"bad directive", ".bogus 1\nmain: ret\n"},
		{"space in text", ".text\n.space 4\nmain: ret\n"},
		{"missing entry", ".entry nope\nmain: ret\n"},
		{"odd db in text", "main:\n.db 1,2,3\n ret\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Assemble("bad", tt.src); err == nil {
				t.Fatalf("expected error for %q", tt.src)
			}
		})
	}
}

func TestAssembleErrorHasPosition(t *testing.T) {
	_, err := Assemble("pos", "main:\n nop\n frob\n")
	if err == nil {
		t.Fatal("expected error")
	}
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not *Error", err)
	}
	if ae.Line != 3 {
		t.Errorf("error line = %d, want 3", ae.Line)
	}
	if !strings.Contains(err.Error(), "pos:3") {
		t.Errorf("error text %q should contain file:line", err)
	}
}

func TestAssembleProgramTableWithLpm(t *testing.T) {
	p, err := Assemble("lpmtab", `
main:
    ldi r30, lo8(pmbyte(tab))
    ldi r31, hi8(pmbyte(tab))
    lpm r24, Z+
    lpm r25, Z
    ret
tab:
    .dw 0x1234, 0xBEEF
`)
	if err != nil {
		t.Fatal(err)
	}
	tab, ok := p.Lookup("tab")
	if !ok {
		t.Fatal("no tab symbol")
	}
	if p.Words[tab.Addr] != 0x1234 || p.Words[tab.Addr+1] != 0xBEEF {
		t.Errorf("table contents wrong: %#x %#x", p.Words[tab.Addr], p.Words[tab.Addr+1])
	}
	in0, _ := avr.Decode(p.Words)
	if in0.Imm != int32(tab.Addr*2&0xFF) {
		t.Errorf("lo8(pmbyte(tab)) = %d, want %d", in0.Imm, tab.Addr*2&0xFF)
	}
}

package asm

import (
	"fmt"
	"strings"

	"repro/internal/avr"
)

// instWords returns the size in words of the instruction named mn, for the
// pass-1 location counter. Operand values are not needed: AVR instruction
// sizes depend only on the mnemonic in our subset.
func instWords(mn string, ops []string) (int, error) {
	spec, ok := mnemonics[mn]
	if !ok {
		return 0, fmt.Errorf("unknown mnemonic %q", mn)
	}
	if spec.operands >= 0 && len(ops) != spec.operands {
		return 0, fmt.Errorf("%s takes %d operand(s), got %d", mn, spec.operands, len(ops))
	}
	return spec.words, nil
}

// encodeInst encodes one pass-2 instruction statement.
func (a *assembler) encodeInst(st stmt) (avr.Inst, error) {
	spec := mnemonics[st.mnemonic]
	in, err := spec.build(a, st)
	if err != nil {
		return avr.Inst{}, a.errf(st.line, "%s: %v", st.mnemonic, err)
	}
	return in, nil
}

type mnSpec struct {
	words    int
	operands int // -1: variable
	build    func(a *assembler, st stmt) (avr.Inst, error)
}

// reg parses operand i as a register.
func reg(st stmt, i int) (uint8, error) {
	r, ok := parseReg(st.operands[i])
	if !ok {
		return 0, fmt.Errorf("operand %d: %q is not a register", i+1, st.operands[i])
	}
	return r, nil
}

// value evaluates operand i as a constant expression.
func (a *assembler) value(st stmt, i int) (int64, error) {
	return a.eval(st.operands[i], int64(st.addr)*2)
}

// target evaluates operand i as a code address. Expressions that use "."
// yield byte addresses (GNU-as convention) and are halved; plain labels and
// numbers are word addresses already.
func (a *assembler) target(st stmt, i int) (int64, error) {
	expr := strings.TrimSpace(st.operands[i])
	usesDot := exprUsesDot(expr)
	v, err := a.eval(expr, int64(st.addr)*2)
	if err != nil {
		return 0, err
	}
	if usesDot {
		if v%2 != 0 {
			return 0, fmt.Errorf("odd byte target %d", v)
		}
		v /= 2
	}
	return v, nil
}

// exprUsesDot reports whether the expression references the "." location
// symbol (as opposed to a dot-prefixed local label like ".loop").
func exprUsesDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '.' {
			continue
		}
		next := byte(0)
		if i+1 < len(s) {
			next = s[i+1]
		}
		if !isIdentByte(next) {
			return true
		}
		// Skip the rest of this identifier.
		for i+1 < len(s) && isIdentByte(s[i+1]) {
			i++
		}
	}
	return false
}

func rrBuilder(op avr.Op) mnSpec {
	return mnSpec{1, 2, func(a *assembler, st stmt) (avr.Inst, error) {
		d, err := reg(st, 0)
		if err != nil {
			return avr.Inst{}, err
		}
		r, err := reg(st, 1)
		if err != nil {
			return avr.Inst{}, err
		}
		return avr.Inst{Op: op, Dst: d, Src: r}, nil
	}}
}

func riBuilder(op avr.Op) mnSpec {
	return mnSpec{1, 2, func(a *assembler, st stmt) (avr.Inst, error) {
		d, err := reg(st, 0)
		if err != nil {
			return avr.Inst{}, err
		}
		v, err := a.value(st, 1)
		if err != nil {
			return avr.Inst{}, err
		}
		if v < -128 || v > 255 {
			return avr.Inst{}, fmt.Errorf("immediate %d out of byte range", v)
		}
		return avr.Inst{Op: op, Dst: d, Imm: int64ToImm8(v)}, nil
	}}
}

func int64ToImm8(v int64) int32 { return int32(uint8(v)) }

func r1Builder(op avr.Op) mnSpec {
	return mnSpec{1, 1, func(a *assembler, st stmt) (avr.Inst, error) {
		d, err := reg(st, 0)
		if err != nil {
			return avr.Inst{}, err
		}
		return avr.Inst{Op: op, Dst: d}, nil
	}}
}

// rrAlias builds ops like "lsl r5" = ADD r5, r5.
func rrAlias(op avr.Op) mnSpec {
	return mnSpec{1, 1, func(a *assembler, st stmt) (avr.Inst, error) {
		d, err := reg(st, 0)
		if err != nil {
			return avr.Inst{}, err
		}
		return avr.Inst{Op: op, Dst: d, Src: d}, nil
	}}
}

func wImmBuilder(op avr.Op) mnSpec {
	return mnSpec{1, 2, func(a *assembler, st stmt) (avr.Inst, error) {
		d, err := reg(st, 0)
		if err != nil {
			return avr.Inst{}, err
		}
		v, err := a.value(st, 1)
		if err != nil {
			return avr.Inst{}, err
		}
		return avr.Inst{Op: op, Dst: d, Imm: int32(v)}, nil
	}}
}

func flagBuilder(op avr.Op, bit uint8) mnSpec {
	return mnSpec{1, 0, func(a *assembler, st stmt) (avr.Inst, error) {
		return avr.Inst{Op: op, Dst: bit}, nil
	}}
}

func impliedBuilder(op avr.Op) mnSpec {
	return mnSpec{op.Words(), 0, func(a *assembler, st stmt) (avr.Inst, error) {
		return avr.Inst{Op: op}, nil
	}}
}

func relBuilder(op avr.Op, bits int) mnSpec {
	return mnSpec{1, 1, func(a *assembler, st stmt) (avr.Inst, error) {
		t, err := a.target(st, 0)
		if err != nil {
			return avr.Inst{}, err
		}
		disp := t - int64(st.addr) - 1
		limit := int64(1) << (bits - 1)
		if disp < -limit || disp >= limit {
			return avr.Inst{}, fmt.Errorf("target out of %d-bit range (disp %d words)", bits, disp)
		}
		return avr.Inst{Op: op, Imm: int32(disp)}, nil
	}}
}

func brBuilder(op avr.Op, bit uint8) mnSpec {
	rel := relBuilder(op, 7)
	return mnSpec{1, 1, func(a *assembler, st stmt) (avr.Inst, error) {
		in, err := rel.build(a, st)
		if err != nil {
			return avr.Inst{}, err
		}
		in.Src = bit
		return in, nil
	}}
}

func absBuilder(op avr.Op) mnSpec {
	return mnSpec{2, 1, func(a *assembler, st stmt) (avr.Inst, error) {
		t, err := a.target(st, 0)
		if err != nil {
			return avr.Inst{}, err
		}
		return avr.Inst{Op: op, Imm: int32(t)}, nil
	}}
}

func skipRegBuilder(op avr.Op) mnSpec {
	return mnSpec{1, 2, func(a *assembler, st stmt) (avr.Inst, error) {
		d, err := reg(st, 0)
		if err != nil {
			return avr.Inst{}, err
		}
		b, err := a.value(st, 1)
		if err != nil {
			return avr.Inst{}, err
		}
		return avr.Inst{Op: op, Dst: d, Imm: int32(b)}, nil
	}}
}

func ioBitBuilder(op avr.Op) mnSpec {
	return mnSpec{1, 2, func(a *assembler, st stmt) (avr.Inst, error) {
		addr, err := a.value(st, 0)
		if err != nil {
			return avr.Inst{}, err
		}
		b, err := a.value(st, 1)
		if err != nil {
			return avr.Inst{}, err
		}
		if addr < 0 || addr > 31 {
			return avr.Inst{}, fmt.Errorf("I/O address %#x not bit-addressable (0..31)", addr)
		}
		return avr.Inst{Op: op, Dst: uint8(addr), Imm: int32(b)}, nil
	}}
}

// pointerOperand recognizes the X/Y/Z pointer syntaxes for ld/st/ldd/std.
type pointerOperand struct {
	reg  uint8 // avr.RegX/Y/Z
	mode byte  // ' ' plain, '+' post-inc, '-' pre-dec, 'q' displacement
	disp string
}

func parsePointer(s string) (pointerOperand, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return pointerOperand{}, false
	}
	up := strings.ToUpper(s)
	letter := func(c byte) (uint8, bool) {
		switch c {
		case 'X':
			return avr.RegX, true
		case 'Y':
			return avr.RegY, true
		case 'Z':
			return avr.RegZ, true
		}
		return 0, false
	}
	if r, ok := letter(up[0]); ok {
		rest := strings.TrimSpace(up[1:])
		switch {
		case rest == "":
			return pointerOperand{reg: r, mode: ' '}, true
		case rest == "+":
			return pointerOperand{reg: r, mode: '+'}, true
		case strings.HasPrefix(rest, "+"):
			return pointerOperand{reg: r, mode: 'q', disp: strings.TrimSpace(s[strings.Index(s, "+")+1:])}, true
		}
	}
	if up[0] == '-' {
		if r, ok := letter(up[len(up)-1]); ok && strings.TrimSpace(up[1:len(up)-1]) == "" {
			return pointerOperand{reg: r, mode: '-'}, true
		}
	}
	return pointerOperand{}, false
}

// ldStOp maps (pointer reg, mode, isStore) to the concrete Op.
func ldStOp(p pointerOperand, store bool) (avr.Op, error) {
	type key struct {
		reg   uint8
		mode  byte
		store bool
	}
	table := map[key]avr.Op{
		{avr.RegX, ' ', false}: avr.OpLdX,
		{avr.RegX, '+', false}: avr.OpLdXInc,
		{avr.RegX, '-', false}: avr.OpLdXDec,
		{avr.RegY, '+', false}: avr.OpLdYInc,
		{avr.RegY, '-', false}: avr.OpLdYDec,
		{avr.RegY, ' ', false}: avr.OpLddY, // LD Rd,Y == LDD Rd,Y+0
		{avr.RegY, 'q', false}: avr.OpLddY,
		{avr.RegZ, '+', false}: avr.OpLdZInc,
		{avr.RegZ, '-', false}: avr.OpLdZDec,
		{avr.RegZ, ' ', false}: avr.OpLddZ,
		{avr.RegZ, 'q', false}: avr.OpLddZ,
		{avr.RegX, ' ', true}:  avr.OpStX,
		{avr.RegX, '+', true}:  avr.OpStXInc,
		{avr.RegX, '-', true}:  avr.OpStXDec,
		{avr.RegY, '+', true}:  avr.OpStYInc,
		{avr.RegY, '-', true}:  avr.OpStYDec,
		{avr.RegY, ' ', true}:  avr.OpStdY,
		{avr.RegY, 'q', true}:  avr.OpStdY,
		{avr.RegZ, '+', true}:  avr.OpStZInc,
		{avr.RegZ, '-', true}:  avr.OpStZDec,
		{avr.RegZ, ' ', true}:  avr.OpStdZ,
		{avr.RegZ, 'q', true}:  avr.OpStdZ,
	}
	op, ok := table[key{p.reg, p.mode, store}]
	if !ok {
		return avr.OpInvalid, fmt.Errorf("unsupported pointer addressing mode")
	}
	return op, nil
}

var ldSpec = mnSpec{1, 2, func(a *assembler, st stmt) (avr.Inst, error) {
	d, err := reg(st, 0)
	if err != nil {
		return avr.Inst{}, err
	}
	p, ok := parsePointer(st.operands[1])
	if !ok {
		return avr.Inst{}, fmt.Errorf("bad pointer operand %q", st.operands[1])
	}
	op, err := ldStOp(p, false)
	if err != nil {
		return avr.Inst{}, err
	}
	in := avr.Inst{Op: op, Dst: d}
	if p.mode == 'q' {
		q, err := a.eval(p.disp, int64(st.addr)*2)
		if err != nil {
			return avr.Inst{}, err
		}
		in.Imm = int32(q)
	}
	return in, nil
}}

var lddSpec = ldSpec // ldd is ld with a displacement pointer

var stSpec = mnSpec{1, 2, func(a *assembler, st stmt) (avr.Inst, error) {
	p, ok := parsePointer(st.operands[0])
	if !ok {
		return avr.Inst{}, fmt.Errorf("bad pointer operand %q", st.operands[0])
	}
	r, err := reg(st, 1)
	if err != nil {
		return avr.Inst{}, err
	}
	op, err := ldStOp(p, true)
	if err != nil {
		return avr.Inst{}, err
	}
	in := avr.Inst{Op: op, Dst: r}
	if p.mode == 'q' {
		q, err := a.eval(p.disp, int64(st.addr)*2)
		if err != nil {
			return avr.Inst{}, err
		}
		in.Imm = int32(q)
	}
	return in, nil
}}

var ldsSpec = mnSpec{2, 2, func(a *assembler, st stmt) (avr.Inst, error) {
	d, err := reg(st, 0)
	if err != nil {
		return avr.Inst{}, err
	}
	addr, err := a.value(st, 1)
	if err != nil {
		return avr.Inst{}, err
	}
	return avr.Inst{Op: avr.OpLds, Dst: d, Imm: int32(addr)}, nil
}}

var stsSpec = mnSpec{2, 2, func(a *assembler, st stmt) (avr.Inst, error) {
	addr, err := a.value(st, 0)
	if err != nil {
		return avr.Inst{}, err
	}
	r, err := reg(st, 1)
	if err != nil {
		return avr.Inst{}, err
	}
	return avr.Inst{Op: avr.OpSts, Dst: r, Imm: int32(addr)}, nil
}}

var lpmSpec = mnSpec{1, -1, func(a *assembler, st stmt) (avr.Inst, error) {
	switch len(st.operands) {
	case 0:
		return avr.Inst{Op: avr.OpLpm}, nil
	case 2:
		d, err := reg(st, 0)
		if err != nil {
			return avr.Inst{}, err
		}
		p, ok := parsePointer(st.operands[1])
		if !ok || p.reg != avr.RegZ || (p.mode != ' ' && p.mode != '+') {
			return avr.Inst{}, fmt.Errorf("lpm needs Z or Z+")
		}
		if p.mode == '+' {
			return avr.Inst{Op: avr.OpLpmZInc, Dst: d}, nil
		}
		return avr.Inst{Op: avr.OpLpmZ, Dst: d}, nil
	}
	return avr.Inst{}, fmt.Errorf("lpm takes 0 or 2 operands")
}}

var inSpec = mnSpec{1, 2, func(a *assembler, st stmt) (avr.Inst, error) {
	d, err := reg(st, 0)
	if err != nil {
		return avr.Inst{}, err
	}
	addr, err := a.value(st, 1)
	if err != nil {
		return avr.Inst{}, err
	}
	return avr.Inst{Op: avr.OpIn, Dst: d, Imm: int32(addr)}, nil
}}

var outSpec = mnSpec{1, 2, func(a *assembler, st stmt) (avr.Inst, error) {
	addr, err := a.value(st, 0)
	if err != nil {
		return avr.Inst{}, err
	}
	r, err := reg(st, 1)
	if err != nil {
		return avr.Inst{}, err
	}
	return avr.Inst{Op: avr.OpOut, Dst: r, Imm: int32(addr)}, nil
}}

var serSpec = mnSpec{1, 1, func(a *assembler, st stmt) (avr.Inst, error) {
	d, err := reg(st, 0)
	if err != nil {
		return avr.Inst{}, err
	}
	return avr.Inst{Op: avr.OpLdi, Dst: d, Imm: 0xFF}, nil
}}

var ktrapSpec = mnSpec{2, 1, func(a *assembler, st stmt) (avr.Inst, error) {
	v, err := a.value(st, 0)
	if err != nil {
		return avr.Inst{}, err
	}
	return avr.Inst{Op: avr.OpKtrap, Imm: int32(v)}, nil
}}

// mnemonics is the master mnemonic table.
var mnemonics = map[string]mnSpec{
	"nop":   impliedBuilder(avr.OpNop),
	"sleep": impliedBuilder(avr.OpSleep),
	"wdr":   impliedBuilder(avr.OpWdr),
	"break": impliedBuilder(avr.OpBreak),
	"ijmp":  impliedBuilder(avr.OpIjmp),
	"icall": impliedBuilder(avr.OpIcall),
	"ret":   impliedBuilder(avr.OpRet),
	"reti":  impliedBuilder(avr.OpReti),

	"add":  rrBuilder(avr.OpAdd),
	"adc":  rrBuilder(avr.OpAdc),
	"sub":  rrBuilder(avr.OpSub),
	"sbc":  rrBuilder(avr.OpSbc),
	"and":  rrBuilder(avr.OpAnd),
	"or":   rrBuilder(avr.OpOr),
	"eor":  rrBuilder(avr.OpEor),
	"mov":  rrBuilder(avr.OpMov),
	"cp":   rrBuilder(avr.OpCp),
	"cpc":  rrBuilder(avr.OpCpc),
	"cpse": rrBuilder(avr.OpCpse),
	"mul":  rrBuilder(avr.OpMul),
	"movw": rrBuilder(avr.OpMovw),

	"subi": riBuilder(avr.OpSubi),
	"sbci": riBuilder(avr.OpSbci),
	"andi": riBuilder(avr.OpAndi),
	"ori":  riBuilder(avr.OpOri),
	"cpi":  riBuilder(avr.OpCpi),
	"ldi":  riBuilder(avr.OpLdi),

	"com":  r1Builder(avr.OpCom),
	"neg":  r1Builder(avr.OpNeg),
	"swap": r1Builder(avr.OpSwap),
	"inc":  r1Builder(avr.OpInc),
	"dec":  r1Builder(avr.OpDec),
	"asr":  r1Builder(avr.OpAsr),
	"lsr":  r1Builder(avr.OpLsr),
	"ror":  r1Builder(avr.OpRor),
	"push": r1Builder(avr.OpPush),
	"pop":  r1Builder(avr.OpPop),

	"lsl": rrAlias(avr.OpAdd),
	"rol": rrAlias(avr.OpAdc),
	"tst": rrAlias(avr.OpAnd),
	"clr": rrAlias(avr.OpEor),
	"ser": serSpec,

	"adiw": wImmBuilder(avr.OpAdiw),
	"sbiw": wImmBuilder(avr.OpSbiw),

	"bset": skipImmFlag(avr.OpBset),
	"bclr": skipImmFlag(avr.OpBclr),
	"sec":  flagBuilder(avr.OpBset, avr.FlagC),
	"sez":  flagBuilder(avr.OpBset, avr.FlagZ),
	"sen":  flagBuilder(avr.OpBset, avr.FlagN),
	"sev":  flagBuilder(avr.OpBset, avr.FlagV),
	"ses":  flagBuilder(avr.OpBset, avr.FlagS),
	"seh":  flagBuilder(avr.OpBset, avr.FlagH),
	"set":  flagBuilder(avr.OpBset, avr.FlagT),
	"sei":  flagBuilder(avr.OpBset, avr.FlagI),
	"clc":  flagBuilder(avr.OpBclr, avr.FlagC),
	"clz":  flagBuilder(avr.OpBclr, avr.FlagZ),
	"cln":  flagBuilder(avr.OpBclr, avr.FlagN),
	"clv":  flagBuilder(avr.OpBclr, avr.FlagV),
	"cls":  flagBuilder(avr.OpBclr, avr.FlagS),
	"clh":  flagBuilder(avr.OpBclr, avr.FlagH),
	"clt":  flagBuilder(avr.OpBclr, avr.FlagT),
	"cli":  flagBuilder(avr.OpBclr, avr.FlagI),

	"rjmp":  relBuilder(avr.OpRjmp, 12),
	"rcall": relBuilder(avr.OpRcall, 12),
	"jmp":   absBuilder(avr.OpJmp),
	"call":  absBuilder(avr.OpCall),

	"brcs": brBuilder(avr.OpBrbs, avr.FlagC),
	"brlo": brBuilder(avr.OpBrbs, avr.FlagC),
	"breq": brBuilder(avr.OpBrbs, avr.FlagZ),
	"brmi": brBuilder(avr.OpBrbs, avr.FlagN),
	"brvs": brBuilder(avr.OpBrbs, avr.FlagV),
	"brlt": brBuilder(avr.OpBrbs, avr.FlagS),
	"brhs": brBuilder(avr.OpBrbs, avr.FlagH),
	"brts": brBuilder(avr.OpBrbs, avr.FlagT),
	"brie": brBuilder(avr.OpBrbs, avr.FlagI),
	"brcc": brBuilder(avr.OpBrbc, avr.FlagC),
	"brsh": brBuilder(avr.OpBrbc, avr.FlagC),
	"brne": brBuilder(avr.OpBrbc, avr.FlagZ),
	"brpl": brBuilder(avr.OpBrbc, avr.FlagN),
	"brvc": brBuilder(avr.OpBrbc, avr.FlagV),
	"brge": brBuilder(avr.OpBrbc, avr.FlagS),
	"brhc": brBuilder(avr.OpBrbc, avr.FlagH),
	"brtc": brBuilder(avr.OpBrbc, avr.FlagT),
	"brid": brBuilder(avr.OpBrbc, avr.FlagI),

	"sbrc": skipRegBuilder(avr.OpSbrc),
	"sbrs": skipRegBuilder(avr.OpSbrs),
	"sbic": ioBitBuilder(avr.OpSbic),
	"sbis": ioBitBuilder(avr.OpSbis),
	"sbi":  ioBitBuilder(avr.OpSbi),
	"cbi":  ioBitBuilder(avr.OpCbi),

	"in":  inSpec,
	"out": outSpec,

	"ld":  ldSpec,
	"ldd": lddSpec,
	"st":  stSpec,
	"std": stSpec,
	"lds": ldsSpec,
	"sts": stsSpec,
	"lpm": lpmSpec,

	"ktrap": ktrapSpec,
}

// skipImmFlag builds BSET/BCLR with an explicit bit-number operand.
func skipImmFlag(op avr.Op) mnSpec {
	return mnSpec{1, 1, func(a *assembler, st stmt) (avr.Inst, error) {
		v, err := a.value(st, 0)
		if err != nil {
			return avr.Inst{}, err
		}
		return avr.Inst{Op: op, Dst: uint8(v)}, nil
	}}
}

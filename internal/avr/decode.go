package avr

import (
	"errors"
	"fmt"
)

// ErrTruncated is returned when a 32-bit instruction's second word is missing.
var ErrTruncated = errors.New("avr: truncated 32-bit instruction")

// ErrUnknownInst is returned for bit patterns outside the supported subset.
var ErrUnknownInst = errors.New("avr: unknown instruction")

// Decode decodes the instruction starting at words[0]. For 32-bit
// instructions words[1] must be present. It returns the decoded instruction;
// in.Words() tells the caller how far to advance.
func Decode(words []uint16) (Inst, error) {
	if len(words) == 0 {
		return Inst{}, ErrTruncated
	}
	w := words[0]

	second := func() (uint16, error) {
		if len(words) < 2 {
			return 0, ErrTruncated
		}
		return words[1], nil
	}

	switch w >> 12 {
	case 0x0:
		switch {
		case w == 0x0000:
			return Inst{Op: OpNop}, nil
		case w&0xFF00 == 0x0100:
			return Inst{Op: OpMovw, Dst: uint8(w>>4&0xF) * 2, Src: uint8(w&0xF) * 2}, nil
		case w&0xFC00 == 0x0400:
			return decodeRR(OpCpc, w), nil
		case w&0xFC00 == 0x0800:
			return decodeRR(OpSbc, w), nil
		case w&0xFC00 == 0x0C00:
			return decodeRR(OpAdd, w), nil
		}
	case 0x1:
		switch w & 0xFC00 {
		case 0x1000:
			return decodeRR(OpCpse, w), nil
		case 0x1400:
			return decodeRR(OpCp, w), nil
		case 0x1800:
			return decodeRR(OpSub, w), nil
		case 0x1C00:
			return decodeRR(OpAdc, w), nil
		}
	case 0x2:
		switch w & 0xFC00 {
		case 0x2000:
			return decodeRR(OpAnd, w), nil
		case 0x2400:
			return decodeRR(OpEor, w), nil
		case 0x2800:
			return decodeRR(OpOr, w), nil
		case 0x2C00:
			return decodeRR(OpMov, w), nil
		}
	case 0x3:
		return decodeRI(OpCpi, w), nil
	case 0x4:
		return decodeRI(OpSbci, w), nil
	case 0x5:
		return decodeRI(OpSubi, w), nil
	case 0x6:
		return decodeRI(OpOri, w), nil
	case 0x7:
		return decodeRI(OpAndi, w), nil
	case 0x8, 0xA:
		return decodeDisp(w), nil
	case 0x9:
		return decode9(w, second)
	case 0xB:
		a := int32(w&0xF) | int32(w>>5&0x30)
		d := uint8(w >> 4 & 0x1F)
		if w&0x0800 == 0 {
			return Inst{Op: OpIn, Dst: d, Imm: a}, nil
		}
		return Inst{Op: OpOut, Dst: d, Imm: a}, nil
	case 0xC:
		return Inst{Op: OpRjmp, Imm: signExtend(int32(w&0x0FFF), 12)}, nil
	case 0xD:
		return Inst{Op: OpRcall, Imm: signExtend(int32(w&0x0FFF), 12)}, nil
	case 0xE:
		return decodeRI(OpLdi, w), nil
	case 0xF:
		switch {
		case w&0xFC00 == 0xF000:
			return Inst{Op: OpBrbs, Src: uint8(w & 7), Imm: signExtend(int32(w>>3&0x7F), 7)}, nil
		case w&0xFC00 == 0xF400:
			return Inst{Op: OpBrbc, Src: uint8(w & 7), Imm: signExtend(int32(w>>3&0x7F), 7)}, nil
		case w&0xFE08 == 0xFC00:
			return Inst{Op: OpSbrc, Dst: uint8(w >> 4 & 0x1F), Imm: int32(w & 7)}, nil
		case w&0xFE08 == 0xFE00:
			return Inst{Op: OpSbrs, Dst: uint8(w >> 4 & 0x1F), Imm: int32(w & 7)}, nil
		}
	}
	return Inst{}, fmt.Errorf("%w: %#04x", ErrUnknownInst, w)
}

func decode9(w uint16, second func() (uint16, error)) (Inst, error) {
	switch {
	case w&0xFE0F == 0x9000: // LDS
		addr, err := second()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpLds, Dst: uint8(w >> 4 & 0x1F), Imm: int32(addr)}, nil
	case w&0xFE0F == 0x9200: // STS
		addr, err := second()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpSts, Dst: uint8(w >> 4 & 0x1F), Imm: int32(addr)}, nil
	case w == 0x9598: // BREAK / KTRAP
		id, err := second()
		if err != nil {
			// A bare BREAK at the very end of flash decodes as BREAK.
			return Inst{Op: OpBreak}, nil
		}
		return Inst{Op: OpKtrap, Imm: int32(id)}, nil
	case w == 0x9409:
		return Inst{Op: OpIjmp}, nil
	case w == 0x9509:
		return Inst{Op: OpIcall}, nil
	case w == 0x9508:
		return Inst{Op: OpRet}, nil
	case w == 0x9518:
		return Inst{Op: OpReti}, nil
	case w == 0x9588:
		return Inst{Op: OpSleep}, nil
	case w == 0x95A8:
		return Inst{Op: OpWdr}, nil
	case w == 0x95C8:
		return Inst{Op: OpLpm}, nil
	case w&0xFF8F == 0x9408:
		return Inst{Op: OpBset, Dst: uint8(w >> 4 & 7)}, nil
	case w&0xFF8F == 0x9488:
		return Inst{Op: OpBclr, Dst: uint8(w >> 4 & 7)}, nil
	case w&0xFE0E == 0x940C: // JMP
		lo, err := second()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpJmp, Imm: jmpTarget(w, lo)}, nil
	case w&0xFE0E == 0x940E: // CALL
		lo, err := second()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpCall, Imm: jmpTarget(w, lo)}, nil
	case w&0xFE00 == 0x9400: // one-register ALU
		d := uint8(w >> 4 & 0x1F)
		switch w & 0xF {
		case 0x0:
			return Inst{Op: OpCom, Dst: d}, nil
		case 0x1:
			return Inst{Op: OpNeg, Dst: d}, nil
		case 0x2:
			return Inst{Op: OpSwap, Dst: d}, nil
		case 0x3:
			return Inst{Op: OpInc, Dst: d}, nil
		case 0x5:
			return Inst{Op: OpAsr, Dst: d}, nil
		case 0x6:
			return Inst{Op: OpLsr, Dst: d}, nil
		case 0x7:
			return Inst{Op: OpRor, Dst: d}, nil
		case 0xA:
			return Inst{Op: OpDec, Dst: d}, nil
		}
	case w&0xFF00 == 0x9600:
		return decodeWImm(OpAdiw, w), nil
	case w&0xFF00 == 0x9700:
		return decodeWImm(OpSbiw, w), nil
	case w&0xFF00 == 0x9800:
		return Inst{Op: OpCbi, Dst: uint8(w >> 3 & 0x1F), Imm: int32(w & 7)}, nil
	case w&0xFF00 == 0x9900:
		return Inst{Op: OpSbic, Dst: uint8(w >> 3 & 0x1F), Imm: int32(w & 7)}, nil
	case w&0xFF00 == 0x9A00:
		return Inst{Op: OpSbi, Dst: uint8(w >> 3 & 0x1F), Imm: int32(w & 7)}, nil
	case w&0xFF00 == 0x9B00:
		return Inst{Op: OpSbis, Dst: uint8(w >> 3 & 0x1F), Imm: int32(w & 7)}, nil
	case w&0xFC00 == 0x9C00:
		return decodeRR(OpMul, w), nil
	case w&0xFE00 == 0x9000 || w&0xFE00 == 0x9200:
		return decodeLdSt(w)
	}
	return Inst{}, fmt.Errorf("%w: %#04x", ErrUnknownInst, w)
}

func decodeLdSt(w uint16) (Inst, error) {
	d := uint8(w >> 4 & 0x1F)
	load := w&0x0200 == 0
	low := w & 0xF
	if load {
		switch low {
		case 0x1:
			return Inst{Op: OpLdZInc, Dst: d}, nil
		case 0x2:
			return Inst{Op: OpLdZDec, Dst: d}, nil
		case 0x4:
			return Inst{Op: OpLpmZ, Dst: d}, nil
		case 0x5:
			return Inst{Op: OpLpmZInc, Dst: d}, nil
		case 0x9:
			return Inst{Op: OpLdYInc, Dst: d}, nil
		case 0xA:
			return Inst{Op: OpLdYDec, Dst: d}, nil
		case 0xC:
			return Inst{Op: OpLdX, Dst: d}, nil
		case 0xD:
			return Inst{Op: OpLdXInc, Dst: d}, nil
		case 0xE:
			return Inst{Op: OpLdXDec, Dst: d}, nil
		case 0xF:
			return Inst{Op: OpPop, Dst: d}, nil
		}
	} else {
		switch low {
		case 0x1:
			return Inst{Op: OpStZInc, Dst: d}, nil
		case 0x2:
			return Inst{Op: OpStZDec, Dst: d}, nil
		case 0x9:
			return Inst{Op: OpStYInc, Dst: d}, nil
		case 0xA:
			return Inst{Op: OpStYDec, Dst: d}, nil
		case 0xC:
			return Inst{Op: OpStX, Dst: d}, nil
		case 0xD:
			return Inst{Op: OpStXInc, Dst: d}, nil
		case 0xE:
			return Inst{Op: OpStXDec, Dst: d}, nil
		case 0xF:
			return Inst{Op: OpPush, Dst: d}, nil
		}
	}
	return Inst{}, fmt.Errorf("%w: %#04x", ErrUnknownInst, w)
}

func decodeDisp(w uint16) Inst {
	q := int32(w&7) | int32(w>>7&0x18) | int32(w>>8&0x20)
	d := uint8(w >> 4 & 0x1F)
	store := w&0x0200 != 0
	y := w&0x0008 != 0
	switch {
	case store && y:
		return Inst{Op: OpStdY, Dst: d, Imm: q}
	case store:
		return Inst{Op: OpStdZ, Dst: d, Imm: q}
	case y:
		return Inst{Op: OpLddY, Dst: d, Imm: q}
	default:
		return Inst{Op: OpLddZ, Dst: d, Imm: q}
	}
}

func decodeRR(op Op, w uint16) Inst {
	return Inst{
		Op:  op,
		Dst: uint8(w >> 4 & 0x1F),
		Src: uint8(w&0xF) | uint8(w>>5&0x10),
	}
}

func decodeRI(op Op, w uint16) Inst {
	return Inst{
		Op:  op,
		Dst: 16 + uint8(w>>4&0xF),
		Imm: int32(w&0xF) | int32(w>>4&0xF0),
	}
}

func decodeWImm(op Op, w uint16) Inst {
	return Inst{
		Op:  op,
		Dst: 24 + uint8(w>>4&0x3)*2,
		Imm: int32(w&0xF) | int32(w>>2&0x30),
	}
}

func jmpTarget(hi, lo uint16) int32 {
	return int32(hi>>4&0x1F)<<17 | int32(hi&1)<<16 | int32(lo)
}

func signExtend(v int32, bits uint) int32 {
	shift := 32 - bits
	return v << shift >> shift
}

package avr

// Inst is one decoded (or to-be-encoded) instruction. Operand meaning varies
// by Op:
//
//   - Dst: destination register Rd, or the tested register (SBRC/SBRS), or
//     the I/O address A (SBI/CBI/SBIC/SBIS), or the SREG bit s (BSET/BCLR).
//   - Src: source register Rr.
//   - Imm: immediate K, displacement q, I/O address A (IN/OUT), SREG bit s
//     (BRBS/BRBC), bit number b, 16-bit data address (LDS/STS), word
//     displacement k (RJMP/RCALL/BRxx, signed, relative to the next
//     instruction), absolute word address k (JMP/CALL), or the service id
//     (KTRAP).
type Inst struct {
	Op  Op
	Dst uint8
	Src uint8
	Imm int32
}

// Words returns the encoded size of the instruction in 16-bit words.
func (in Inst) Words() int { return in.Op.Words() }

// Bytes returns the encoded size of the instruction in bytes.
func (in Inst) Bytes() int { return 2 * in.Op.Words() }

// IsStore reports whether the instruction writes data memory through a
// pointer register or absolute address (PUSH excluded: it writes through SP).
func (in Inst) IsStore() bool {
	switch in.Op {
	case OpSts, OpStX, OpStXInc, OpStXDec, OpStYInc, OpStYDec, OpStdY,
		OpStZInc, OpStZDec, OpStdZ:
		return true
	}
	return false
}

// IsLoad reports whether the instruction reads data memory through a pointer
// register or absolute address (POP excluded: it reads through SP).
func (in Inst) IsLoad() bool {
	switch in.Op {
	case OpLds, OpLdX, OpLdXInc, OpLdXDec, OpLdYInc, OpLdYDec, OpLddY,
		OpLdZInc, OpLdZDec, OpLddZ:
		return true
	}
	return false
}

// IsMemAccess reports whether the instruction accesses data memory through a
// pointer register or an absolute address and therefore needs SenSmart
// address translation.
func (in Inst) IsMemAccess() bool { return in.IsLoad() || in.IsStore() }

// IsDirectMem reports whether the access uses a statically known absolute
// address (LDS/STS), which the base-station rewriter can resolve without a
// runtime lookup.
func (in Inst) IsDirectMem() bool { return in.Op == OpLds || in.Op == OpSts }

// PointerReg returns the base pointer register pair (RegX, RegY or RegZ) used
// by an indirect memory access, and whether the instruction has one.
func (in Inst) PointerReg() (uint8, bool) {
	switch in.Op {
	case OpLdX, OpLdXInc, OpLdXDec, OpStX, OpStXInc, OpStXDec:
		return RegX, true
	case OpLdYInc, OpLdYDec, OpLddY, OpStYInc, OpStYDec, OpStdY:
		return RegY, true
	case OpLdZInc, OpLdZDec, OpLddZ, OpStZInc, OpStZDec, OpStdZ:
		return RegZ, true
	}
	return 0, false
}

// PointerMutates reports whether an indirect access pre-decrements or
// post-increments its pointer register.
func (in Inst) PointerMutates() bool {
	switch in.Op {
	case OpLdXInc, OpLdXDec, OpLdYInc, OpLdYDec, OpLdZInc, OpLdZDec,
		OpStXInc, OpStXDec, OpStYInc, OpStYDec, OpStZInc, OpStZDec:
		return true
	}
	return false
}

// IsBranch reports whether the instruction is a PC-relative conditional or
// unconditional branch (the class the rewriter patches for software-trap
// preemption when the displacement is negative).
func (in Inst) IsBranch() bool {
	switch in.Op {
	case OpRjmp, OpBrbs, OpBrbc:
		return true
	}
	return false
}

// IsCall reports whether the instruction pushes a return address.
func (in Inst) IsCall() bool {
	switch in.Op {
	case OpRcall, OpCall, OpIcall:
		return true
	}
	return false
}

// IsIndirectJump reports whether the instruction's target is computed at run
// time from Z and therefore needs program-memory address translation.
func (in Inst) IsIndirectJump() bool { return in.Op == OpIjmp || in.Op == OpIcall }

// IsControlTransfer reports whether the instruction may change PC to
// something other than the next instruction.
func (in Inst) IsControlTransfer() bool {
	switch in.Op {
	case OpRjmp, OpRcall, OpJmp, OpCall, OpIjmp, OpIcall, OpRet, OpReti,
		OpBrbs, OpBrbc, OpCpse, OpSbrc, OpSbrs, OpSbic, OpSbis:
		return true
	}
	return false
}

// IsSkip reports whether the instruction conditionally skips its successor.
func (in Inst) IsSkip() bool {
	switch in.Op {
	case OpCpse, OpSbrc, OpSbrs, OpSbic, OpSbis:
		return true
	}
	return false
}

// RelTarget returns the branch target word address given the word address of
// this instruction, for the PC-relative ops (RJMP/RCALL/BRBS/BRBC). The
// displacement in Imm is relative to the following instruction.
func (in Inst) RelTarget(pc uint32) uint32 {
	return uint32(int64(pc) + 1 + int64(in.Imm))
}

// ReadsSP reports whether the instruction reads SPL or SPH through the I/O
// space, which SenSmart patches to the get-stack-pointer service.
func (in Inst) ReadsSP() bool {
	return in.Op == OpIn && (in.Imm == IOSpl || in.Imm == IOSph)
}

// WritesSP reports whether the instruction writes SPL or SPH through the I/O
// space, which SenSmart patches to the set-stack-pointer service.
func (in Inst) WritesSP() bool {
	if in.Op == OpOut && (in.Imm == IOSpl || in.Imm == IOSph) {
		return true
	}
	return false
}

// IOAddr returns the I/O-space address accessed by IN/OUT/SBI/CBI/SBIC/SBIS,
// and whether the instruction touches I/O space at all.
func (in Inst) IOAddr() (uint8, bool) {
	switch in.Op {
	case OpIn, OpOut:
		return uint8(in.Imm), true
	case OpSbi, OpCbi, OpSbic, OpSbis:
		return in.Dst, true
	}
	return 0, false
}

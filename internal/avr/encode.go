package avr

import (
	"errors"
	"fmt"
)

// Encoding errors.
var (
	ErrBadOperand = errors.New("avr: operand out of range")
	ErrBadOp      = errors.New("avr: unknown op")
)

func badOperand(in Inst, reason string) error {
	return fmt.Errorf("avr: encode %s: %s: %w", in.Op, reason, ErrBadOperand)
}

// Encode emits the binary encoding of in as one or two 16-bit words in
// program-memory order (low word first for 32-bit instructions).
func Encode(in Inst) ([]uint16, error) {
	switch in.Op {
	case OpNop:
		return []uint16{0x0000}, nil
	case OpSleep:
		return []uint16{0x9588}, nil
	case OpWdr:
		return []uint16{0x95A8}, nil
	case OpBreak:
		return []uint16{0x9598}, nil
	case OpIjmp:
		return []uint16{0x9409}, nil
	case OpIcall:
		return []uint16{0x9509}, nil
	case OpRet:
		return []uint16{0x9508}, nil
	case OpReti:
		return []uint16{0x9518}, nil
	case OpLpm:
		return []uint16{0x95C8}, nil

	case OpAdd, OpAdc, OpSub, OpSbc, OpAnd, OpOr, OpEor, OpMov, OpCp, OpCpc,
		OpCpse, OpMul:
		return encodeRR(in)

	case OpMovw:
		if in.Dst > 30 || in.Src > 30 || in.Dst%2 != 0 || in.Src%2 != 0 {
			return nil, badOperand(in, "register pairs must be even")
		}
		return []uint16{0x0100 | uint16(in.Dst/2)<<4 | uint16(in.Src/2)}, nil

	case OpSubi, OpSbci, OpAndi, OpOri, OpCpi, OpLdi:
		return encodeRI(in)

	case OpCom, OpNeg, OpSwap, OpInc, OpDec, OpAsr, OpLsr, OpRor:
		return encodeR1(in)

	case OpAdiw, OpSbiw:
		return encodeWImm(in)

	case OpBset, OpBclr:
		if in.Dst > 7 {
			return nil, badOperand(in, "SREG bit must be 0..7")
		}
		base := uint16(0x9408)
		if in.Op == OpBclr {
			base = 0x9488
		}
		return []uint16{base | uint16(in.Dst)<<4}, nil

	case OpRjmp, OpRcall:
		if in.Imm < -2048 || in.Imm > 2047 {
			return nil, badOperand(in, "12-bit displacement out of range")
		}
		base := uint16(0xC000)
		if in.Op == OpRcall {
			base = 0xD000
		}
		return []uint16{base | uint16(in.Imm)&0x0FFF}, nil

	case OpJmp, OpCall:
		if in.Imm < 0 || in.Imm >= 1<<22 {
			return nil, badOperand(in, "22-bit address out of range")
		}
		base := uint16(0x940C)
		if in.Op == OpCall {
			base = 0x940E
		}
		k := uint32(in.Imm)
		w1 := base | uint16(k>>17&0x1F)<<4 | uint16(k>>16&1)
		return []uint16{w1, uint16(k & 0xFFFF)}, nil

	case OpBrbs, OpBrbc:
		if in.Src > 7 {
			return nil, badOperand(in, "SREG bit must be 0..7")
		}
		if in.Imm < -64 || in.Imm > 63 {
			return nil, badOperand(in, "7-bit displacement out of range")
		}
		base := uint16(0xF000)
		if in.Op == OpBrbc {
			base = 0xF400
		}
		return []uint16{base | (uint16(in.Imm)&0x7F)<<3 | uint16(in.Src)}, nil

	case OpSbrc, OpSbrs:
		if in.Dst > 31 || in.Imm < 0 || in.Imm > 7 {
			return nil, badOperand(in, "register or bit out of range")
		}
		base := uint16(0xFC00)
		if in.Op == OpSbrs {
			base = 0xFE00
		}
		return []uint16{base | uint16(in.Dst)<<4 | uint16(in.Imm)}, nil

	case OpSbi, OpCbi, OpSbic, OpSbis:
		if in.Dst > 31 || in.Imm < 0 || in.Imm > 7 {
			return nil, badOperand(in, "I/O address must be 0..31, bit 0..7")
		}
		var base uint16
		switch in.Op {
		case OpCbi:
			base = 0x9800
		case OpSbic:
			base = 0x9900
		case OpSbi:
			base = 0x9A00
		case OpSbis:
			base = 0x9B00
		}
		return []uint16{base | uint16(in.Dst)<<3 | uint16(in.Imm)}, nil

	case OpIn, OpOut:
		if in.Dst > 31 || in.Imm < 0 || in.Imm > 63 {
			return nil, badOperand(in, "I/O address must be 0..63")
		}
		a := uint16(in.Imm)
		base := uint16(0xB000)
		if in.Op == OpOut {
			base = 0xB800
		}
		return []uint16{base | (a & 0x30 << 5) | uint16(in.Dst)<<4 | (a & 0x0F)}, nil

	case OpLds, OpSts:
		if in.Dst > 31 || in.Imm < 0 || in.Imm > 0xFFFF {
			return nil, badOperand(in, "register or 16-bit address out of range")
		}
		base := uint16(0x9000)
		if in.Op == OpSts {
			base = 0x9200
		}
		return []uint16{base | uint16(in.Dst)<<4, uint16(in.Imm)}, nil

	case OpLdX, OpLdXInc, OpLdXDec, OpLdYInc, OpLdYDec, OpLdZInc, OpLdZDec,
		OpPop, OpLpmZ, OpLpmZInc,
		OpStX, OpStXInc, OpStXDec, OpStYInc, OpStYDec, OpStZInc, OpStZDec,
		OpPush:
		return encodeLdSt(in)

	case OpLddY, OpLddZ, OpStdY, OpStdZ:
		return encodeDisp(in)

	case OpKtrap:
		if in.Imm < 0 || in.Imm > 0xFFFF {
			return nil, badOperand(in, "service id must fit 16 bits")
		}
		return []uint16{0x9598, uint16(in.Imm)}, nil
	}
	return nil, fmt.Errorf("avr: encode %v: %w", in.Op, ErrBadOp)
}

// AppendWords encodes in and appends the words to dst, growing it as needed.
func AppendWords(dst []uint16, in Inst) ([]uint16, error) {
	w, err := Encode(in)
	if err != nil {
		return dst, err
	}
	return append(dst, w...), nil
}

func encodeRR(in Inst) ([]uint16, error) {
	if in.Dst > 31 || in.Src > 31 {
		return nil, badOperand(in, "registers must be r0..r31")
	}
	var base uint16
	switch in.Op {
	case OpCpc:
		base = 0x0400
	case OpSbc:
		base = 0x0800
	case OpAdd:
		base = 0x0C00
	case OpCpse:
		base = 0x1000
	case OpCp:
		base = 0x1400
	case OpSub:
		base = 0x1800
	case OpAdc:
		base = 0x1C00
	case OpAnd:
		base = 0x2000
	case OpEor:
		base = 0x2400
	case OpOr:
		base = 0x2800
	case OpMov:
		base = 0x2C00
	case OpMul:
		base = 0x9C00
	}
	r := uint16(in.Src)
	return []uint16{base | (r & 0x10 << 5) | uint16(in.Dst)<<4 | (r & 0x0F)}, nil
}

func encodeRI(in Inst) ([]uint16, error) {
	if in.Dst < 16 || in.Dst > 31 {
		return nil, badOperand(in, "immediate ops require r16..r31")
	}
	if in.Imm < 0 || in.Imm > 255 {
		return nil, badOperand(in, "immediate must be 0..255")
	}
	var base uint16
	switch in.Op {
	case OpCpi:
		base = 0x3000
	case OpSbci:
		base = 0x4000
	case OpSubi:
		base = 0x5000
	case OpOri:
		base = 0x6000
	case OpAndi:
		base = 0x7000
	case OpLdi:
		base = 0xE000
	}
	k := uint16(in.Imm)
	return []uint16{base | (k & 0xF0 << 4) | uint16(in.Dst-16)<<4 | (k & 0x0F)}, nil
}

func encodeR1(in Inst) ([]uint16, error) {
	if in.Dst > 31 {
		return nil, badOperand(in, "register must be r0..r31")
	}
	var low uint16
	switch in.Op {
	case OpCom:
		low = 0x0
	case OpNeg:
		low = 0x1
	case OpSwap:
		low = 0x2
	case OpInc:
		low = 0x3
	case OpAsr:
		low = 0x5
	case OpLsr:
		low = 0x6
	case OpRor:
		low = 0x7
	case OpDec:
		low = 0xA
	}
	return []uint16{0x9400 | uint16(in.Dst)<<4 | low}, nil
}

func encodeWImm(in Inst) ([]uint16, error) {
	switch in.Dst {
	case 24, 26, 28, 30:
	default:
		return nil, badOperand(in, "word ops require r24/r26/r28/r30")
	}
	if in.Imm < 0 || in.Imm > 63 {
		return nil, badOperand(in, "immediate must be 0..63")
	}
	base := uint16(0x9600)
	if in.Op == OpSbiw {
		base = 0x9700
	}
	k := uint16(in.Imm)
	dd := uint16(in.Dst-24) / 2
	return []uint16{base | (k & 0x30 << 2) | dd<<4 | (k & 0x0F)}, nil
}

func encodeLdSt(in Inst) ([]uint16, error) {
	if in.Dst > 31 {
		return nil, badOperand(in, "register must be r0..r31")
	}
	var low uint16
	base := uint16(0x9000) // loads
	switch in.Op {
	case OpLdZInc:
		low = 0x1
	case OpLdZDec:
		low = 0x2
	case OpLpmZ:
		low = 0x4
	case OpLpmZInc:
		low = 0x5
	case OpLdYInc:
		low = 0x9
	case OpLdYDec:
		low = 0xA
	case OpLdX:
		low = 0xC
	case OpLdXInc:
		low = 0xD
	case OpLdXDec:
		low = 0xE
	case OpPop:
		low = 0xF
	case OpStZInc:
		base, low = 0x9200, 0x1
	case OpStZDec:
		base, low = 0x9200, 0x2
	case OpStYInc:
		base, low = 0x9200, 0x9
	case OpStYDec:
		base, low = 0x9200, 0xA
	case OpStX:
		base, low = 0x9200, 0xC
	case OpStXInc:
		base, low = 0x9200, 0xD
	case OpStXDec:
		base, low = 0x9200, 0xE
	case OpPush:
		base, low = 0x9200, 0xF
	}
	return []uint16{base | uint16(in.Dst)<<4 | low}, nil
}

func encodeDisp(in Inst) ([]uint16, error) {
	if in.Dst > 31 {
		return nil, badOperand(in, "register must be r0..r31")
	}
	if in.Imm < 0 || in.Imm > 63 {
		return nil, badOperand(in, "displacement must be 0..63")
	}
	q := uint16(in.Imm)
	w := uint16(0x8000) | (q & 0x20 << 8) | (q & 0x18 << 7) | uint16(in.Dst)<<4 | (q & 0x07)
	switch in.Op {
	case OpStdY, OpStdZ:
		w |= 0x0200
	}
	switch in.Op {
	case OpLddY, OpStdY:
		w |= 0x0008
	}
	return []uint16{w}, nil
}

package avr

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestKnownEncodings pins our encoder to byte patterns produced by avr-gcc /
// documented in the AVR instruction-set manual.
func TestKnownEncodings(t *testing.T) {
	tests := []struct {
		name string
		give Inst
		want []uint16
	}{
		{"nop", Inst{Op: OpNop}, []uint16{0x0000}},
		{"movw r24,r22", Inst{Op: OpMovw, Dst: 24, Src: 22}, []uint16{0x01CB}},
		{"add r1,r2", Inst{Op: OpAdd, Dst: 1, Src: 2}, []uint16{0x0C12}},
		{"adc r5,r21", Inst{Op: OpAdc, Dst: 5, Src: 21}, []uint16{0x1E55}},
		{"ldi r16,0xFF", Inst{Op: OpLdi, Dst: 16, Imm: 0xFF}, []uint16{0xEF0F}},
		{"rjmp .-2", Inst{Op: OpRjmp, Imm: -1}, []uint16{0xCFFF}},
		{"ret", Inst{Op: OpRet}, []uint16{0x9508}},
		{"reti", Inst{Op: OpReti}, []uint16{0x9518}},
		{"push r28", Inst{Op: OpPush, Dst: 28}, []uint16{0x93CF}},
		{"pop r29", Inst{Op: OpPop, Dst: 29}, []uint16{0x91DF}},
		{"in r28,SPL", Inst{Op: OpIn, Dst: 28, Imm: 0x3D}, []uint16{0xB7CD}},
		{"out SPH,r29", Inst{Op: OpOut, Dst: 29, Imm: 0x3E}, []uint16{0xBFDE}},
		{"ldd r24,Y+1", Inst{Op: OpLddY, Dst: 24, Imm: 1}, []uint16{0x8189}},
		{"std Y+1,r24", Inst{Op: OpStdY, Dst: 24, Imm: 1}, []uint16{0x8389}},
		{"lds r24,0x100", Inst{Op: OpLds, Dst: 24, Imm: 0x100}, []uint16{0x9180, 0x0100}},
		{"sts 0x100,r24", Inst{Op: OpSts, Dst: 24, Imm: 0x100}, []uint16{0x9380, 0x0100}},
		{"jmp 0", Inst{Op: OpJmp, Imm: 0}, []uint16{0x940C, 0x0000}},
		{"call 0x80", Inst{Op: OpCall, Imm: 0x80}, []uint16{0x940E, 0x0080}},
		{"breq .-4", Inst{Op: OpBrbs, Src: FlagZ, Imm: -2}, []uint16{0xF3F1}},
		{"brne .+2", Inst{Op: OpBrbc, Src: FlagZ, Imm: 1}, []uint16{0xF409}},
		{"sbiw r24,1", Inst{Op: OpSbiw, Dst: 24, Imm: 1}, []uint16{0x9701}},
		{"adiw r30,63", Inst{Op: OpAdiw, Dst: 30, Imm: 63}, []uint16{0x96FF}},
		{"ijmp", Inst{Op: OpIjmp}, []uint16{0x9409}},
		{"icall", Inst{Op: OpIcall}, []uint16{0x9509}},
		{"sleep", Inst{Op: OpSleep}, []uint16{0x9588}},
		{"lpm", Inst{Op: OpLpm}, []uint16{0x95C8}},
		{"lpm r24,Z+", Inst{Op: OpLpmZInc, Dst: 24}, []uint16{0x9185}},
		{"ld r24,X+", Inst{Op: OpLdXInc, Dst: 24}, []uint16{0x918D}},
		{"st -Y,r0", Inst{Op: OpStYDec, Dst: 0}, []uint16{0x920A}},
		{"cpi r17,10", Inst{Op: OpCpi, Dst: 17, Imm: 10}, []uint16{0x301A}},
		{"sbrc r2,3", Inst{Op: OpSbrc, Dst: 2, Imm: 3}, []uint16{0xFC23}},
		{"sbi 0x18,7", Inst{Op: OpSbi, Dst: 0x18, Imm: 7}, []uint16{0x9AC7}},
		{"cbi 0x12,0", Inst{Op: OpCbi, Dst: 0x12, Imm: 0}, []uint16{0x9890}},
		{"bset I (sei)", Inst{Op: OpBset, Dst: FlagI}, []uint16{0x9478}},
		{"bclr I (cli)", Inst{Op: OpBclr, Dst: FlagI}, []uint16{0x94F8}},
		{"ktrap 7", Inst{Op: OpKtrap, Imm: 7}, []uint16{0x9598, 0x0007}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Encode(tt.give)
			if err != nil {
				t.Fatalf("Encode(%+v): %v", tt.give, err)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("Encode(%+v) = %#v, want %#v", tt.give, got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("Encode(%+v) = %#v, want %#v", tt.give, got, tt.want)
				}
			}
			back, err := Decode(got)
			if err != nil {
				t.Fatalf("Decode(%#v): %v", got, err)
			}
			if back != tt.give {
				t.Fatalf("Decode(Encode(%+v)) = %+v", tt.give, back)
			}
		})
	}
}

// randomInst draws a random valid instruction, used by the round-trip
// property test.
func randomInst(r *rand.Rand) Inst {
	reg := func() uint8 { return uint8(r.Intn(32)) }
	hreg := func() uint8 { return uint8(16 + r.Intn(16)) }
	imm8 := func() int32 { return int32(r.Intn(256)) }
	bit := func() int32 { return int32(r.Intn(8)) }

	ops := []func() Inst{
		func() Inst { return Inst{Op: OpNop} },
		func() Inst { return Inst{Op: OpAdd, Dst: reg(), Src: reg()} },
		func() Inst { return Inst{Op: OpAdc, Dst: reg(), Src: reg()} },
		func() Inst { return Inst{Op: OpSub, Dst: reg(), Src: reg()} },
		func() Inst { return Inst{Op: OpSbc, Dst: reg(), Src: reg()} },
		func() Inst { return Inst{Op: OpAnd, Dst: reg(), Src: reg()} },
		func() Inst { return Inst{Op: OpOr, Dst: reg(), Src: reg()} },
		func() Inst { return Inst{Op: OpEor, Dst: reg(), Src: reg()} },
		func() Inst { return Inst{Op: OpMov, Dst: reg(), Src: reg()} },
		func() Inst { return Inst{Op: OpCp, Dst: reg(), Src: reg()} },
		func() Inst { return Inst{Op: OpCpc, Dst: reg(), Src: reg()} },
		func() Inst { return Inst{Op: OpCpse, Dst: reg(), Src: reg()} },
		func() Inst { return Inst{Op: OpMul, Dst: reg(), Src: reg()} },
		func() Inst { return Inst{Op: OpMovw, Dst: uint8(r.Intn(16)) * 2, Src: uint8(r.Intn(16)) * 2} },
		func() Inst { return Inst{Op: OpSubi, Dst: hreg(), Imm: imm8()} },
		func() Inst { return Inst{Op: OpSbci, Dst: hreg(), Imm: imm8()} },
		func() Inst { return Inst{Op: OpAndi, Dst: hreg(), Imm: imm8()} },
		func() Inst { return Inst{Op: OpOri, Dst: hreg(), Imm: imm8()} },
		func() Inst { return Inst{Op: OpCpi, Dst: hreg(), Imm: imm8()} },
		func() Inst { return Inst{Op: OpLdi, Dst: hreg(), Imm: imm8()} },
		func() Inst { return Inst{Op: OpCom, Dst: reg()} },
		func() Inst { return Inst{Op: OpNeg, Dst: reg()} },
		func() Inst { return Inst{Op: OpSwap, Dst: reg()} },
		func() Inst { return Inst{Op: OpInc, Dst: reg()} },
		func() Inst { return Inst{Op: OpDec, Dst: reg()} },
		func() Inst { return Inst{Op: OpAsr, Dst: reg()} },
		func() Inst { return Inst{Op: OpLsr, Dst: reg()} },
		func() Inst { return Inst{Op: OpRor, Dst: reg()} },
		func() Inst { return Inst{Op: OpAdiw, Dst: uint8(24 + 2*r.Intn(4)), Imm: int32(r.Intn(64))} },
		func() Inst { return Inst{Op: OpSbiw, Dst: uint8(24 + 2*r.Intn(4)), Imm: int32(r.Intn(64))} },
		func() Inst { return Inst{Op: OpBset, Dst: uint8(r.Intn(8))} },
		func() Inst { return Inst{Op: OpBclr, Dst: uint8(r.Intn(8))} },
		func() Inst { return Inst{Op: OpRjmp, Imm: int32(r.Intn(4096) - 2048)} },
		func() Inst { return Inst{Op: OpRcall, Imm: int32(r.Intn(4096) - 2048)} },
		func() Inst { return Inst{Op: OpJmp, Imm: int32(r.Intn(1 << 22))} },
		func() Inst { return Inst{Op: OpCall, Imm: int32(r.Intn(1 << 22))} },
		func() Inst { return Inst{Op: OpBrbs, Src: uint8(r.Intn(8)), Imm: int32(r.Intn(128) - 64)} },
		func() Inst { return Inst{Op: OpBrbc, Src: uint8(r.Intn(8)), Imm: int32(r.Intn(128) - 64)} },
		func() Inst { return Inst{Op: OpSbrc, Dst: reg(), Imm: bit()} },
		func() Inst { return Inst{Op: OpSbrs, Dst: reg(), Imm: bit()} },
		func() Inst { return Inst{Op: OpSbic, Dst: uint8(r.Intn(32)), Imm: bit()} },
		func() Inst { return Inst{Op: OpSbis, Dst: uint8(r.Intn(32)), Imm: bit()} },
		func() Inst { return Inst{Op: OpSbi, Dst: uint8(r.Intn(32)), Imm: bit()} },
		func() Inst { return Inst{Op: OpCbi, Dst: uint8(r.Intn(32)), Imm: bit()} },
		func() Inst { return Inst{Op: OpIn, Dst: reg(), Imm: int32(r.Intn(64))} },
		func() Inst { return Inst{Op: OpOut, Dst: reg(), Imm: int32(r.Intn(64))} },
		func() Inst { return Inst{Op: OpLds, Dst: reg(), Imm: int32(r.Intn(0x10000))} },
		func() Inst { return Inst{Op: OpSts, Dst: reg(), Imm: int32(r.Intn(0x10000))} },
		func() Inst { return Inst{Op: OpLdX, Dst: reg()} },
		func() Inst { return Inst{Op: OpLdXInc, Dst: reg()} },
		func() Inst { return Inst{Op: OpLdXDec, Dst: reg()} },
		func() Inst { return Inst{Op: OpLdYInc, Dst: reg()} },
		func() Inst { return Inst{Op: OpLdYDec, Dst: reg()} },
		func() Inst { return Inst{Op: OpLddY, Dst: reg(), Imm: int32(r.Intn(64))} },
		func() Inst { return Inst{Op: OpLdZInc, Dst: reg()} },
		func() Inst { return Inst{Op: OpLdZDec, Dst: reg()} },
		func() Inst { return Inst{Op: OpLddZ, Dst: reg(), Imm: int32(r.Intn(64))} },
		func() Inst { return Inst{Op: OpPop, Dst: reg()} },
		func() Inst { return Inst{Op: OpStX, Dst: reg()} },
		func() Inst { return Inst{Op: OpStXInc, Dst: reg()} },
		func() Inst { return Inst{Op: OpStXDec, Dst: reg()} },
		func() Inst { return Inst{Op: OpStYInc, Dst: reg()} },
		func() Inst { return Inst{Op: OpStYDec, Dst: reg()} },
		func() Inst { return Inst{Op: OpStdY, Dst: reg(), Imm: int32(r.Intn(64))} },
		func() Inst { return Inst{Op: OpStZInc, Dst: reg()} },
		func() Inst { return Inst{Op: OpStZDec, Dst: reg()} },
		func() Inst { return Inst{Op: OpStdZ, Dst: reg(), Imm: int32(r.Intn(64))} },
		func() Inst { return Inst{Op: OpPush, Dst: reg()} },
		func() Inst { return Inst{Op: OpLpm} },
		func() Inst { return Inst{Op: OpLpmZ, Dst: reg()} },
		func() Inst { return Inst{Op: OpLpmZInc, Dst: reg()} },
		func() Inst { return Inst{Op: OpKtrap, Imm: int32(r.Intn(0x10000))} },
		func() Inst { return Inst{Op: OpSleep} },
		func() Inst { return Inst{Op: OpWdr} },
		func() Inst { return Inst{Op: OpIjmp} },
		func() Inst { return Inst{Op: OpIcall} },
		func() Inst { return Inst{Op: OpRet} },
		func() Inst { return Inst{Op: OpReti} },
	}
	return ops[r.Intn(len(ops))]()
}

// TestEncodeDecodeRoundTrip is the core property: every valid instruction
// survives encode→decode unchanged.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 64; i++ {
			in := randomInst(r)
			words, err := Encode(in)
			if err != nil {
				t.Logf("Encode(%+v): %v", in, err)
				return false
			}
			if len(words) != in.Words() {
				t.Logf("%+v: encoded %d words, Words()=%d", in, len(words), in.Words())
				return false
			}
			back, err := Decode(words)
			if err != nil {
				t.Logf("Decode(Encode(%+v)) = %#v: %v", in, words, err)
				return false
			}
			if back != in {
				t.Logf("round trip %+v -> %#v -> %+v", in, words, back)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("Decode(nil) err = %v, want ErrTruncated", err)
	}
	if _, err := Decode([]uint16{0x9180}); !errors.Is(err, ErrTruncated) {
		t.Errorf("Decode(truncated lds) err = %v, want ErrTruncated", err)
	}
	if _, err := Decode([]uint16{0xFFFF}); !errors.Is(err, ErrUnknownInst) {
		t.Errorf("Decode(0xFFFF) err = %v, want ErrUnknownInst", err)
	}
}

func TestEncodeOperandValidation(t *testing.T) {
	tests := []Inst{
		{Op: OpLdi, Dst: 3, Imm: 1},    // LDI needs r16..r31
		{Op: OpLdi, Dst: 16, Imm: 300}, // immediate too large
		{Op: OpAdiw, Dst: 25, Imm: 1},  // ADIW needs r24/26/28/30
		{Op: OpRjmp, Imm: 5000},        // 12-bit displacement
		{Op: OpBrbs, Src: 1, Imm: 100}, // 7-bit displacement
		{Op: OpMovw, Dst: 3, Src: 2},   // odd pair
		{Op: OpLddY, Dst: 1, Imm: 70},  // 6-bit displacement
		{Op: OpIn, Dst: 1, Imm: 100},   // I/O address 0..63
		{Op: OpSbi, Dst: 40, Imm: 1},   // I/O address 0..31
		{Op: OpJmp, Imm: 1 << 23},      // 22-bit address
		{Op: OpInvalid},                // not an op
	}
	for _, in := range tests {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v): expected error", in)
		}
	}
}

func TestInstClassification(t *testing.T) {
	if !(Inst{Op: OpLdX}).IsMemAccess() || (Inst{Op: OpLdX}).IsStore() {
		t.Error("LD X should be a load mem access")
	}
	if !(Inst{Op: OpSts}).IsDirectMem() || !(Inst{Op: OpSts}).IsStore() {
		t.Error("STS should be a direct store")
	}
	if p, ok := (Inst{Op: OpStdY}).PointerReg(); !ok || p != RegY {
		t.Errorf("STD Y pointer reg = %d, %v", p, ok)
	}
	if !(Inst{Op: OpLdXInc}).PointerMutates() {
		t.Error("LD X+ mutates its pointer")
	}
	if (Inst{Op: OpLddZ}).PointerMutates() {
		t.Error("LDD Z+q does not mutate its pointer")
	}
	if !(Inst{Op: OpBrbs}).IsBranch() || (Inst{Op: OpJmp}).IsBranch() {
		t.Error("branch classification wrong")
	}
	if !(Inst{Op: OpRcall}).IsCall() || !(Inst{Op: OpIcall}).IsCall() {
		t.Error("call classification wrong")
	}
	if !(Inst{Op: OpIjmp}).IsIndirectJump() {
		t.Error("IJMP is an indirect jump")
	}
	in := Inst{Op: OpIn, Dst: 1, Imm: IOSpl}
	if !in.ReadsSP() {
		t.Error("IN r1,SPL reads SP")
	}
	out := Inst{Op: OpOut, Dst: 1, Imm: IOSph}
	if !out.WritesSP() {
		t.Error("OUT SPH,r1 writes SP")
	}
	if a, ok := (Inst{Op: OpSbic, Dst: 0x19, Imm: 2}).IOAddr(); !ok || a != 0x19 {
		t.Errorf("SBIC IOAddr = %#x, %v", a, ok)
	}
	br := Inst{Op: OpRjmp, Imm: -3}
	if got := br.RelTarget(10); got != 8 {
		t.Errorf("RelTarget = %d, want 8", got)
	}
	if !(Inst{Op: OpCpse}).IsSkip() || !(Inst{Op: OpCpse}).IsControlTransfer() {
		t.Error("CPSE is a skip / control transfer")
	}
}

func TestDisasmSmoke(t *testing.T) {
	words := []uint16{}
	for _, in := range []Inst{
		{Op: OpLdi, Dst: 16, Imm: 10},
		{Op: OpPush, Dst: 16},
		{Op: OpCall, Imm: 0x40},
		{Op: OpBrbs, Src: FlagZ, Imm: -2},
		{Op: OpKtrap, Imm: 3},
		{Op: OpRet},
	} {
		w, err := Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		words = append(words, w...)
	}
	text := DisasmWords(words)
	for _, want := range []string{"ldi r16, 10", "push r16", "call 0x40", "breq .-2", "ktrap 3", "ret"} {
		if !contains(text, want) {
			t.Errorf("DisasmWords output missing %q:\n%s", want, text)
		}
	}
}

func contains(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0
}

func indexOf(haystack, needle string) int {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return i
		}
	}
	return -1
}

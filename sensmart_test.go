package sensmart

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/image"
)

const facadeSrc = `
.data
value: .space 2
.text
main:
    ldi r16, 42
    sts value, r16
    clr r16
    sts value+1, r16
park:
    sleep
    rjmp park
`

func TestFacadeEndToEnd(t *testing.T) {
	sys := NewSystem()
	prog, err := sys.CompileString("facade", facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := sys.Naturalize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(nat.Patches) == 0 {
		t.Fatal("no patches in naturalized program")
	}
	// Naturalize is cached per program.
	nat2, err := sys.Naturalize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if nat2 != nat {
		t.Error("Naturalize should cache per program")
	}
	taskA, err := sys.Deploy(prog)
	if err != nil {
		t.Fatal(err)
	}
	taskB, err := sys.Deploy(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(200_000); err != nil {
		t.Fatal(err)
	}
	for _, task := range []*Task{taskA, taskB} {
		v, err := sys.TaskHeapWord(task, "value")
		if err != nil {
			t.Fatal(err)
		}
		if v != 42 {
			t.Errorf("%s value = %d, want 42", task.Name, v)
		}
	}
	// Unknown symbols are reported as such.
	if _, err := sys.TaskHeapWord(taskA, "nope"); !errors.Is(err, core.ErrNoSymbol) {
		t.Errorf("err = %v, want ErrNoSymbol", err)
	}
	// The two tasks must own disjoint regions.
	aLo, _, aHi := taskA.Region()
	bLo, _, bHi := taskB.Region()
	if aHi > bLo && bHi > aLo {
		t.Errorf("regions overlap: [%#x,%#x) vs [%#x,%#x)", aLo, aHi, bLo, bHi)
	}
}

func TestFacadeOptionsPropagate(t *testing.T) {
	sys := NewSystem(
		WithKernelConfig(KernelConfig{InitialStack: 200}),
		WithRewriterConfig(RewriterConfig{NoGrouping: true}),
	)
	prog, err := sys.CompileString("opt", facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	task, err := sys.Deploy(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := task.StackAlloc(); got != 200 {
		t.Errorf("initial stack = %d, want 200 (kernel config lost)", got)
	}
	nat, _ := sys.Naturalize(prog)
	for _, p := range nat.Patches {
		if len(p.Group) > 1 {
			t.Error("grouping should be disabled (rewriter config lost)")
		}
	}
}

func TestWorkloadReexports(t *testing.T) {
	if got := len(KernelBenchmarks()); got != 7 {
		t.Fatalf("kernel benchmarks = %d, want 7", got)
	}
	if p := PeriodicTask(PeriodicParams{Instructions: 1000, Activations: 1}); p.SizeBytes() == 0 {
		t.Error("empty periodic program")
	}
	if _, err := TreeSearch(TreeSearchParams{Trees: 2, NodesPerTree: 10}); err != nil {
		t.Error(err)
	}
	for _, build := range []func(int) *Program{LFSR, CRC, Amplitude, ReadADC, AM, EventChain, Timer} {
		if p := build(1); len(p.Words) == 0 {
			t.Error("empty workload program")
		}
	}
}

func TestAssembleRewriteFacade(t *testing.T) {
	prog, err := Assemble("roundtrip", facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := Rewrite(prog, RewriterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if nat.Program.SizeBytes() <= prog.SizeBytes() {
		t.Error("naturalized program should be larger")
	}
	m := NewMachine()
	if m == nil || m.Cycles() != 0 {
		t.Error("NewMachine broken")
	}
}

func TestProgramJSONRoundTrip(t *testing.T) {
	prog, err := Assemble("json", facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	data, err := prog.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back image.Program
	if err := back.DecodeJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.Name != prog.Name || back.Entry != prog.Entry ||
		back.HeapSize != prog.HeapSize || len(back.Words) != len(prog.Words) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, *prog)
	}
	for i := range prog.Words {
		if back.Words[i] != prog.Words[i] {
			t.Fatalf("word %d differs", i)
		}
	}
	if len(back.Symbols) != len(prog.Symbols) {
		t.Fatalf("symbols lost: %d vs %d", len(back.Symbols), len(prog.Symbols))
	}
	// A decoded program must still rewrite and run.
	if _, err := Rewrite(&back, RewriterConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestProgramJSONRejectsCorrupt(t *testing.T) {
	var p image.Program
	if err := p.DecodeJSON([]byte(`{"name":""}`)); err == nil {
		t.Error("empty program should fail validation")
	}
	if err := p.DecodeJSON([]byte(`{broken`)); err == nil {
		t.Error("malformed JSON should fail")
	}
}

func TestFacadeRuntimeDeploy(t *testing.T) {
	sys := NewSystem()
	first, err := sys.CompileString("first", facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Deploy(first); err != nil {
		t.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(sys.Machine().Cycles() + 50_000); err != nil {
		t.Fatal(err)
	}
	// Deploy after Boot spawns at runtime.
	second, err := sys.CompileString("second", facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	task, err := sys.Deploy(second)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(sys.Machine().Cycles() + 200_000); err != nil {
		t.Fatal(err)
	}
	v, err := sys.TaskHeapWord(task, "value")
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("runtime-deployed task value = %d, want 42", v)
	}
}

// Stack relocation in action: three tasks share far less stack memory than
// their peak demands add up to. A deeply recursive task repeatedly outgrows
// its 64-byte initial stack; the kernel transparently relocates regions to
// satisfy it, taking surplus from its idle neighbours — the paper's core
// "versatile stack management" mechanism (Section IV-C3), with the kernel's
// relocation trace turned on.
package main

import (
	"fmt"
	"log"

	sensmart "repro"
)

// recursive sums 1..120 with a 3-byte stack frame per level: ~360 bytes of
// peak stack against a 64-byte initial allocation.
const recursive = `
.data
result: .space 2
.text
main:
    ldi r24, 120
    clr r25
    clr r26
    call sum
    sts result, r25
    sts result+1, r26
    break
sum:
    push r24
    tst r24
    breq done
    add r25, r24
    clr r0
    adc r26, r0
    dec r24
    call sum
done:
    pop r24
    ret
`

// lightweight idles with a tiny stack, donating its surplus.
const lightweight = `
.data
beats: .space 2
.text
main:
loop:
    lds r24, beats
    lds r25, beats+1
    adiw r24, 1
    sts beats, r24
    sts beats+1, r25
    sleep
    rjmp loop
`

func main() {
	sys := sensmart.NewSystem(sensmart.WithKernelConfig(sensmart.KernelConfig{
		InitialStack: 64,
		AppLimit:     640, // tight memory so relocation must work for a living
		Logf: func(format string, args ...any) {
			fmt.Printf("  kernel: "+format+"\n", args...)
		},
	}))

	rec, err := sys.CompileString("recursive", recursive)
	if err != nil {
		log.Fatal(err)
	}
	light, err := sys.CompileString("lightweight", lightweight)
	if err != nil {
		log.Fatal(err)
	}
	recTask, err := sys.Deploy(rec)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Deploy(light); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Deploy(light); err != nil {
		log.Fatal(err)
	}

	fmt.Println("booting: one deep-recursion task + two lightweight tasks in 640 B")
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(20_000_000); err != nil {
		log.Fatal(err)
	}

	v, err := sys.TaskHeapWord(recTask, "result")
	if err == nil && recTask.State().String() == "terminated" {
		// The task exited; its region may already be reclaimed, so report
		// the value only if the lookup still resolves.
		_ = v
	}
	fmt.Printf("\nrecursive task: %s (%s), peak stack %d B, %d relocations\n",
		recTask.Name, recTask.ExitReason, recTask.MaxStackUsed, recTask.Relocations)
	st := sys.Kernel().Stats
	fmt.Printf("kernel total: %d relocations moved %d bytes\n",
		st.Relocations, st.RelocatedBytes)
	for _, t := range sys.Tasks()[1:] {
		fmt.Printf("  donor %-16s still %s with %d B of stack\n",
			t.Name, t.State(), t.StackAlloc())
	}
}

// PeriodicTask: the paper's Figure 6 workload in miniature. The same
// periodic sense-compute application runs bare-metal and under SenSmart at
// two computation sizes — one below the saturation knee (where SenSmart
// tracks native execution almost exactly) and one above it.
package main

import (
	"errors"
	"fmt"
	"log"

	sensmart "repro"
)

func main() {
	for _, insns := range []int{20_000, 90_000} {
		params := sensmart.PeriodicParams{Instructions: insns, Activations: 50}

		nativeCycles, nativeIdle := runNative(params)
		smartCycles, smartIdle := runSenSmart(params)

		fmt.Printf("computation size %d instructions (50 activations):\n", insns)
		fmt.Printf("  native:   %8.3f s, CPU busy %4.1f%%\n",
			float64(nativeCycles)/7372800, busy(nativeCycles, nativeIdle))
		fmt.Printf("  sensmart: %8.3f s, CPU busy %4.1f%% (%.2fx native)\n",
			float64(smartCycles)/7372800, busy(smartCycles, smartIdle),
			float64(smartCycles)/float64(nativeCycles))
	}
}

func busy(total, idle uint64) float64 {
	return 100 * (1 - float64(idle)/float64(total))
}

func runNative(p sensmart.PeriodicParams) (cycles, idle uint64) {
	prog := sensmart.PeriodicTaskNative(p)
	m := sensmart.NewMachine()
	if err := m.LoadFlash(0, prog.Words); err != nil {
		log.Fatal(err)
	}
	m.SetPC(prog.Entry)
	// The program's final BREAK stops the bare machine; hitting the cycle
	// limit instead would return nil.
	if err := m.Run(5_000_000_000); err == nil {
		log.Fatal("native run did not finish")
	}
	return m.Cycles(), m.IdleCycles()
}

func runSenSmart(p sensmart.PeriodicParams) (cycles, idle uint64) {
	sys := sensmart.NewSystem()
	if _, err := sys.Deploy(sensmart.PeriodicTask(p)); err != nil {
		log.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(5_000_000_000); err != nil {
		log.Fatal(err)
	}
	if !sys.Done() {
		log.Fatal(errors.New("sensmart run did not finish"))
	}
	m := sys.Machine()
	return m.Cycles(), m.IdleCycles()
}

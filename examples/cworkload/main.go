// C workload: the full pipeline of the paper's Figure 1 starting from C
// source — compile (minic), naturalize (base-station rewriter), load and
// run under the SenSmart kernel — with two instances of the same C
// application running isolated side by side.
package main

import (
	"fmt"
	"log"

	sensmart "repro"
)

// csrc is a miniature sense-and-send application written in the C subset:
// it samples the ADC, keeps min/max/mean statistics, and radios a summary
// packet every eight samples.
const csrc = `
int minv = 0x3ff;
int maxv;
int mean;
int packets;
char window[8];

void report() {
    int i;
    radio_send(0x7e);             // sync byte
    for (i = 0; i < 8; i++) {
        radio_send(window[i]);
    }
    radio_send(maxv - minv);      // amplitude summary
    packets++;
}

void main() {
    int n;
    for (n = 0; n < 64; n++) {
        int s;
        s = adc_read();
        if (s < minv) { minv = s; }
        if (s > maxv) { maxv = s; }
        mean = mean + (s - mean) / 8;
        window[n % 8] = s >> 2;   // 8-bit compressed sample
        if (n % 8 == 7) {
            report();
        }
    }
    exit();
}
`

func main() {
	sys := sensmart.NewSystem()
	prog, err := sys.CompileCString("sense", csrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled C application: %d bytes of AVR code\n", prog.SizeBytes())

	nat, err := sys.Naturalize(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naturalized: %d bytes, %d patch sites\n",
		nat.Program.SizeBytes(), len(nat.Patches))

	a, err := sys.Deploy(prog)
	if err != nil {
		log.Fatal(err)
	}
	b, err := sys.Deploy(prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(200_000_000); err != nil {
		log.Fatal(err)
	}

	for _, task := range []*sensmart.Task{a, b} {
		fmt.Printf("%s: %s\n", task.Name, task.State())
	}
	m := sys.Machine()
	fmt.Printf("radio: %d bytes transmitted over %.2f simulated seconds\n",
		len(m.RadioOutput()), float64(m.Cycles())/7372800)
}

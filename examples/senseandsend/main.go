// Sense-and-send: a realistic multi-application node. Four applications run
// concurrently under SenSmart — an active-message sender, an ADC amplitude
// tracker, and two binary-tree search tasks with highly dynamic stacks —
// sharing 4 KB of data memory through logical addressing and stack
// relocation.
package main

import (
	"fmt"
	"log"

	sensmart "repro"
)

func main() {
	sys := sensmart.NewSystem(sensmart.WithKernelConfig(sensmart.KernelConfig{
		SliceCycles: 20_000, // 2.7 ms slices keep the mixed workload lively
	}))

	// The radio application and the sensing application are the paper's
	// kernel benchmarks; the tree searchers are the Section V-D workload.
	deploy := func(p *sensmart.Program) {
		if _, err := sys.Deploy(p); err != nil {
			log.Fatal(err)
		}
	}
	deploy(sensmart.AM(25))
	deploy(sensmart.Amplitude(300))
	for _, seed := range []uint16{0x1234, 0x9876} {
		p, err := sensmart.TreeSearch(sensmart.TreeSearchParams{
			Trees: 4, NodesPerTree: 30, Seed: seed, Searches: 400,
		})
		if err != nil {
			log.Fatal(err)
		}
		deploy(p)
	}

	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(100_000_000); err != nil {
		log.Fatal(err)
	}

	m := sys.Machine()
	fmt.Printf("node ran %.2f s simulated, CPU idle %.1f%%\n",
		float64(m.Cycles())/7372800, 100*float64(m.IdleCycles())/float64(m.Cycles()))
	fmt.Printf("radio transmitted %d bytes; uart logged %d bytes\n",
		len(m.RadioOutput()), len(m.UARTOutput()))

	for _, t := range sys.Tasks() {
		fmt.Printf("  %-16s %-10s stack alloc %3d B, peak use %3d B, %d relocations\n",
			t.Name, t.State(), t.StackAlloc(), t.MaxStackUsed, t.Relocations)
	}
	st := sys.Kernel().Stats
	fmt.Printf("kernel: %d context switches, %d preemptions, %d stack relocations (%d B moved)\n",
		st.ContextSwitches, st.Preemptions, st.Relocations, st.RelocatedBytes)
}

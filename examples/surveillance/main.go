// Surveillance: a VigilNet-style deployment scenario (the paper's §I cites
// VigilNet as the kind of complex, multi-task sensornet software that needs
// a real multitasking OS). A detection task continuously samples the ADC
// and counts threshold crossings while a heartbeat task reports over the
// radio. Mid-mission, the base station "reprograms" the node: a brand-new
// classification task is deployed into the running system — the dynamic
// task admission the paper sketches as an OS service.
package main

import (
	"fmt"
	"log"

	sensmart "repro"
)

// detector samples the ADC forever and counts readings above the threshold.
const detector = `
.equ THRESHOLD, 0x200
.data
events:  .space 2
samples: .space 2
.text
main:
loop:
    ldi r16, 0xC0        ; start a conversion
    out ADCSRA, r16
wait:
    in r16, ADCSRA
    sbrc r16, 6
    rjmp wait
    in r24, ADCL
    in r25, ADCH
    lds r18, samples
    lds r19, samples+1
    subi r18, 0xFF
    sbci r19, 0xFF
    sts samples, r18
    sts samples+1, r19
    ; threshold compare
    cpi r24, lo8(THRESHOLD)
    ldi r16, hi8(THRESHOLD)
    cpc r25, r16
    brlo loop
    lds r18, events
    lds r19, events+1
    subi r18, 0xFF
    sbci r19, 0xFF
    sts events, r18
    sts events+1, r19
    rjmp loop
`

// heartbeat transmits a beacon byte every ~50 ms and sleeps in between.
const heartbeat = `
.data
beats: .space 2
.text
main:
loop:
    in r16, RSR
    sbrs r16, 0
    rjmp loop            ; radio busy: poll
    ldi r16, 0xBE        ; beacon byte
    out RDR, r16
    lds r18, beats
    lds r19, beats+1
    subi r18, 0xFF
    sbci r19, 0xFF
    sts beats, r18
    sts beats+1, r19
    ; sleep ~20 quanta between beacons
    ldi r17, 20
zzz:
    sleep
    dec r17
    brne zzz
    rjmp loop
`

// classifier is deployed mid-run: it recursively analyses a window of
// pseudo-random "detection features" (a stand-in for VigilNet's
// classification stage), exercising deep stacks on a node whose memory is
// already carved up — only possible because stacks relocate.
const classifier = `
.data
done:  .space 2
seed:  .space 2
.text
main:
    ldi r16, 0x5A
    sts seed, r16
    ldi r16, 0xA5
    sts seed+1, r16
loop:
    ; next pseudo-random depth 1..24
    lds r24, seed
    lds r25, seed+1
    lsr r25
    ror r24
    brcc noxor
    ldi r18, 0xB4
    eor r25, r18
noxor:
    sts seed, r24
    sts seed+1, r25
    andi r24, 0x17
    subi r24, -1
    rcall analyze
    lds r18, done
    lds r19, done+1
    subi r18, 0xFF
    sbci r19, 0xFF
    sts done, r18
    sts done+1, r19
    sleep
    rjmp loop

; analyze(depth=r24): recursive feature aggregation, 3 bytes per level.
analyze:
    push r24
    tst r24
    breq abase
    dec r24
    rcall analyze
abase:
    pop r24
    ret
`

func main() {
	sys := sensmart.NewSystem(sensmart.WithKernelConfig(sensmart.KernelConfig{
		SliceCycles: 15_000,
	}))
	compile := func(name, src string) *sensmart.Program {
		p, err := sys.CompileString(name, src)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	det, err := sys.Deploy(compile("detector", detector))
	if err != nil {
		log.Fatal(err)
	}
	hb, err := sys.Deploy(compile("heartbeat", heartbeat))
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}

	// Phase 1: the node runs its original mission for ~2 simulated seconds.
	if err := sys.Run(15_000_000); err != nil {
		log.Fatal(err)
	}
	events, _ := sys.TaskHeapWord(det, "events")
	samples, _ := sys.TaskHeapWord(det, "samples")
	beats, _ := sys.TaskHeapWord(hb, "beats")
	fmt.Printf("phase 1 (2.0 s): %d ADC samples, %d detections, %d beacons\n",
		samples, events, beats)

	// Phase 2: the base station reprograms the node with a classifier.
	cls, err := sys.Deploy(compile("classifier", classifier))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reprogrammed: classifier task deployed into the running node")
	if err := sys.Run(30_000_000); err != nil {
		log.Fatal(err)
	}

	events, _ = sys.TaskHeapWord(det, "events")
	analyses, _ := sys.TaskHeapWord(cls, "done")
	m := sys.Machine()
	fmt.Printf("phase 2 (4.1 s total): %d detections, %d classification runs, %d radio bytes\n",
		events, analyses, len(m.RadioOutput()))
	fmt.Printf("classifier: peak stack %d B (initial 64 B), %d relocations to grow it\n",
		cls.MaxStackUsed, cls.Relocations)
	fmt.Printf("node energy so far: %.1f mJ (CPU idle %.1f%%)\n",
		m.EnergyMilliJoules(), 100*float64(m.IdleCycles())/float64(m.Cycles()))
	for _, t := range sys.Tasks() {
		fmt.Printf("  %-14s %s\n", t.Name, t.State())
	}
}

// Quickstart: compile a tiny application, deploy two isolated instances of
// it under the SenSmart kernel, run them to completion, and read their
// results back through the logical-address mapping.
package main

import (
	"fmt"
	"log"

	sensmart "repro"
)

// src is a complete SenSmart application: it sums 1..100 into a heap
// variable and then parks itself. Note the plain absolute heap addressing — the
// base-station rewriter and the kernel's logical addressing make the same
// binary safe to instantiate many times concurrently.
const src = `
.data
total: .space 2
.text
main:
    clr r24              ; sum low
    clr r25              ; sum high
    ldi r16, 100
loop:
    add r24, r16
    clr r0
    adc r25, r0
    dec r16
    brne loop
    sts total, r24
    sts total+1, r25
hold:
    sleep                ; keep the task alive so its region stays inspectable
    rjmp hold
`

func main() {
	sys := sensmart.NewSystem()

	prog, err := sys.CompileString("sum", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d bytes\n", prog.Name, prog.SizeBytes())

	nat, err := sys.Naturalize(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naturalized: %d patch sites, %d bytes (%.0f%% inflation)\n",
		len(nat.Patches), nat.Program.SizeBytes(),
		100*float64(nat.Program.SizeBytes()-prog.SizeBytes())/float64(prog.SizeBytes()))

	// Two instances of the same binary run as two isolated tasks.
	taskA, err := sys.Deploy(prog)
	if err != nil {
		log.Fatal(err)
	}
	taskB, err := sys.Deploy(prog)
	if err != nil {
		log.Fatal(err)
	}

	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(10_000_000); err != nil {
		log.Fatal(err)
	}

	for _, t := range []*sensmart.Task{taskA, taskB} {
		v, err := sys.TaskHeapWord(t, "total")
		if err != nil {
			log.Fatal(err)
		}
		pl, _, pu := t.Region()
		fmt.Printf("%s: total=%d (region [%#x,%#x), %s)\n", t.Name, v, pl, pu, t.State())
	}
	fmt.Printf("simulated %d cycles (%.3f ms on a 7.37 MHz mote)\n",
		sys.Machine().Cycles(), float64(sys.Machine().Cycles())/7372.8)
}

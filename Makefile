# CI entry points for the SenSmart reproduction.
#
#   make ci             everything CI runs: format check, vet, build,
#                       race-enabled tests (incl. the trace-driven kernel
#                       suite), coverage floors, and a short differential fuzz
#   make test           race-enabled test suite only
#   make cover          enforce statement-coverage floors on kernel, mcu,
#                       and the profiler
#   make fuzz           10s differential fuzz campaign
#   make bench          run the seven benchmarks profiled vs unprofiled and
#                       regenerate BENCH_profile.json
#   make bench-parallel regenerate BENCH_parallel.json
#   make bench-interp   regenerate BENCH_interp.json (checked vs fast
#                       interpreter throughput) and gate it against the
#                       committed BENCH_interp.baseline.json
#   make bench-diff     diff BENCH_interp.json against the committed
#                       baseline with the schema-aware comparator; fails on
#                       out-of-band regressions
#   make faultcampaign  short race-enabled fault-injection campaign smoke:
#                       runs the seeded campaign over the full benchmark
#                       suite and writes a report to a scratch path
#   make checkpoint     race-enabled checkpoint/restore smoke: snapshot a
#                       running two-task workload mid-run with sensmart-sim,
#                       then restore the blob and run it to completion
#   make energy         race-enabled energy smoke: short -exp energy run
#                       (kernel benchmarks + baselines on the joules axis)
#                       to a scratch path, verdict table printed
#   make debug          race-enabled time-travel smoke: scripted sensmart-sim
#                       -debug seek+dump session, a campaign run that must
#                       embed forensic reports, and a comparator pass over
#                       the forensic-bearing output

GO ?= go
FUZZTIME ?= 10s

# Statement-coverage floors for the cycle-accounting core. Measured 83.1%
# (kernel) and 75.8% (mcu) when introduced; floors sit a few points below so
# incidental drift doesn't break CI, while gutting the trace/cost suites does.
# The profiler floor is the ISSUE-mandated 75% (measured 93.6% when
# introduced).
KERNEL_COVER_FLOOR = 78
MCU_COVER_FLOOR = 70
PROFILE_COVER_FLOOR = 75
TELEMETRY_COVER_FLOOR = 75
# Campaign-engine floor is the ISSUE-mandated 75% (measured 89.7% when
# introduced).
FAULTINJECT_COVER_FLOOR = 75
# Snapshot-codec floor is the ISSUE-mandated 75% (measured 99.5% when
# introduced: the round-trip, rejection, golden, and fuzz suites cover the
# whole codec).
SNAPSHOT_COVER_FLOOR = 75
# Energy-ledger and trace floors are the ISSUE-mandated 75% (measured 100%
# and 93.6% when introduced).
ENERGY_COVER_FLOOR = 75
TRACE_COVER_FLOOR = 75
# Time-travel debugger floor is the ISSUE-mandated 75% (measured 87.2% when
# introduced).
TIMETRAVEL_COVER_FLOOR = 75

.PHONY: ci build vet test cover fmt-check fuzz bench bench-parallel bench-interp bench-diff faultcampaign checkpoint energy debug

ci: fmt-check vet build test cover fuzz bench-interp bench-diff faultcampaign checkpoint energy debug

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

cover:
	@set -e; \
	check() { \
		pct=$$($(GO) test -cover $$1 | awk '{for(i=1;i<=NF;i++) if ($$i=="coverage:") print $$(i+1)}' | tr -d '%'); \
		if [ -z "$$pct" ]; then echo "$$1: no coverage reported"; exit 1; fi; \
		echo "$$1 coverage: $$pct% (floor $$2%)"; \
		awk -v p="$$pct" -v f="$$2" 'BEGIN { exit (p+0 < f+0) ? 1 : 0 }' \
			|| { echo "$$1 coverage $$pct% fell below the $$2% floor"; exit 1; }; \
	}; \
	check ./internal/kernel $(KERNEL_COVER_FLOOR); \
	check ./internal/mcu $(MCU_COVER_FLOOR); \
	check ./internal/profile $(PROFILE_COVER_FLOOR); \
	check ./internal/telemetry $(TELEMETRY_COVER_FLOOR); \
	check ./internal/faultinject $(FAULTINJECT_COVER_FLOOR); \
	check ./internal/snapshot $(SNAPSHOT_COVER_FLOOR); \
	check ./internal/energy $(ENERGY_COVER_FLOOR); \
	check ./internal/trace $(TRACE_COVER_FLOOR); \
	check ./internal/timetravel $(TIMETRAVEL_COVER_FLOOR)

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fuzz:
	$(GO) test ./internal/experiment -run '^FuzzDifferential$$' -fuzz '^FuzzDifferential$$' -fuzztime $(FUZZTIME)

bench:
	$(GO) run ./cmd/sensmart-bench -exp profilebench -out BENCH_profile.json
	$(GO) run ./cmd/sensmart-bench -exp energy -activations 300 -out BENCH_energy.json
	$(MAKE) bench-interp

bench-parallel:
	$(GO) run ./cmd/sensmart-bench -exp benchparallel -parallel 4 -activations 40 -out BENCH_parallel.json

# The interp gate is host-relative where it can be: the suite-aggregate
# fast/checked speedup must stay >= 1.3x, block translation must keep fused
# mode >= 1.05x over the fast loop, and the end-to-end checked/fused figure
# must stay >= 1.5x (the floor raised when translation landed). The armed
# telemetry/energy passes must stay under 1% overhead, and a wide tolerance
# band on the absolute MIPS floor keeps a slower CI host from flaking the
# build.
bench-interp:
	$(GO) run ./cmd/sensmart-bench -exp interp -reps 5 -out BENCH_interp.json -baseline BENCH_interp.baseline.json -min-speedup 1.3 -min-fused 1.05 -min-total 1.5

# Schema-aware cross-run diff of the freshly generated interp numbers
# against the committed baseline. The 60% band is deliberately wide for the
# same reason bench-interp's MIPS tolerance is: absolute wall-clock depends
# on the host, and the hard invariants (cycle identity, suite speedup,
# armed-telemetry overhead) are gated by bench-interp itself.
bench-diff:
	$(GO) run ./cmd/sensmart-bench -exp compare -old BENCH_interp.baseline.json -new BENCH_interp.json -tolerance 60

# Race-enabled campaign smoke: 3 trials per benchmark keeps it a few seconds
# while still exercising every injection kind and the full verdict pipeline.
# The golden 20-trial table is pinned by TestGoldenContainmentTable in
# `make test`; this target proves the CLI path end to end under -race.
faultcampaign:
	$(GO) run -race ./cmd/sensmart-bench -exp faultcampaign -seed 1 -trials 3 -out /tmp/BENCH_faultcampaign_smoke.json

# Race-enabled CLI checkpoint/restore smoke: snapshot a two-task workload
# mid-run, then resume the written blob to completion. The full resume-
# identity matrix (all seven benchmarks, every checkpoint kind, serial and
# pooled) is pinned by TestResumeIdentity* in `make test`; this target proves
# the sim's -checkpoint/-restore path end to end under -race.
checkpoint:
	$(GO) run -race ./cmd/sensmart-sim -cycles 40000000 -copies 2 -stats \
		-checkpoint-at 500000 -checkpoint /tmp/sensmart_checkpoint_smoke.ssnp \
		cmd/sensmart-sim/testdata/checkpoint_smoke.s
	$(GO) run -race ./cmd/sensmart-sim -cycles 40000000 -copies 2 -stats \
		-restore /tmp/sensmart_checkpoint_smoke.ssnp \
		cmd/sensmart-sim/testdata/checkpoint_smoke.s

# Race-enabled energy smoke: a short joules-axis run (10 activations instead
# of the committed file's 300) to a scratch path. The byte-identity of the
# full run between serial and parallel pools is pinned by
# TestEnergyBenchDeterministic in `make test`; this target proves the CLI
# path and the baseline-ordering verdict end to end under -race.
energy:
	$(GO) run -race ./cmd/sensmart-bench -exp energy -activations 10 -quiet \
		-out /tmp/BENCH_energy_smoke.json

# Race-enabled time-travel smoke. First a scripted -debug session: record a
# two-task workload under the checkpoint ring, then seek to the boot state, a
# boot-fallback cycle, and a ring-restored cycle, dumping every section kind.
# Then a short campaign whose output must embed at least one forensic report
# (seed 2 produces non-contained verdicts), self-compared through the
# schema-aware comparator so the forensic_coverage row is exercised end to
# end. The seek-identity matrix itself is pinned by TestSeekIdentity* in
# `make test`.
debug:
	$(GO) run -race ./cmd/sensmart-sim -debug -cycles 2000000 -copies 2 \
		-ring 4 -ring-every 200000 -at 0 -at 600000 -at 1999999 \
		-dump regs,stack,mem:0x100+16,tasks,energy,events \
		cmd/sensmart-sim/testdata/checkpoint_smoke.s
	$(GO) run -race ./cmd/sensmart-bench -exp faultcampaign -seed 2 -trials 3 \
		-out /tmp/BENCH_debug_forensics.json
	grep -q '"forensics"' /tmp/BENCH_debug_forensics.json
	$(GO) run ./cmd/sensmart-bench -exp compare -old /tmp/BENCH_debug_forensics.json \
		-new /tmp/BENCH_debug_forensics.json -tolerance 5

# CI entry points for the SenSmart reproduction.
#
#   make ci             everything CI runs: format check, vet, build,
#                       race-enabled tests, and a short differential fuzz
#   make test           race-enabled test suite only
#   make fuzz           10s differential fuzz campaign
#   make bench-parallel regenerate BENCH_parallel.json

GO ?= go
FUZZTIME ?= 10s

.PHONY: ci build vet test fmt-check fuzz bench-parallel

ci: fmt-check vet build test fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fuzz:
	$(GO) test ./internal/experiment -run '^FuzzDifferential$$' -fuzz '^FuzzDifferential$$' -fuzztime $(FUZZTIME)

bench-parallel:
	$(GO) run ./cmd/sensmart-bench -exp benchparallel -parallel 4 -activations 40 -out BENCH_parallel.json
